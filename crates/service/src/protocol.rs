//! The hand-rolled newline-delimited wire protocol.
//!
//! One request per block, one verb per line, demand payloads in the
//! versioned demand-list format of [`grooming_graph::io`]. No serde, no
//! framing bytes — a transcript is readable with `nc` and diffable with
//! `diff`, which is exactly how the determinism contract is asserted.
//!
//! # Requests
//!
//! ```text
//! PING
//! STATS
//! SHUTDOWN
//! BATCH id=<u64> count=<N> [deadline_ms=<D>] [algo=<name>]
//!   ⟨N × item stanza⟩
//! END
//! RECONFIGURE id=<u64> count=<N> [deadline_ms=<D>] [algo=<name>]
//!   ⟨N × reconfigure stanza⟩
//! END
//! ```
//!
//! Each item stanza is one `ITEM` line followed by a strict demand-list
//! block (its `demands v1 <n> <m>` header plus exactly `m` entry lines —
//! no comments or blank lines inside a stanza; those are only allowed
//! *between* top-level requests):
//!
//! ```text
//! ITEM <kind> k=<K> [budget=<B>] [sadms=<S>]
//! demands v1 <n> <m>
//! <u> <v> [units]
//! ...
//! ```
//!
//! Kinds: `upsr`, `ring`, `budgeted` (requires `budget=`), `weighted`,
//! `online` (requires `sadms=`), `blsr`, `mesh` (requires `routes=`),
//! `reconfigure`. Multi-ring instances are in-process only — their gateway
//! topology has no demand-list encoding — so [`format_batch_request`]
//! refuses them with [`WireFormatError::NotWireable`].
//!
//! A `mesh` stanza carries the physical topology in the `topology v1`
//! block format of [`grooming_graph::io`] followed by the demand list;
//! the demand node count must equal the topology node count:
//!
//! ```text
//! ITEM mesh k=<K> routes=<R>
//! topology v1 <n> <m>         ⟨n cap lines, then m link lines⟩
//! <ports|*> <switch|*>
//! <u> <v> [weight]
//! demands v1 <n> <d>          ⟨d entry lines⟩
//! ```
//!
//! A `reconfigure` stanza is the warm-start workload: the prior demand
//! snapshot, the prior plan, and the churn delta, all in the same
//! `demands v1` framing plus one `plan v1` block:
//!
//! ```text
//! ITEM reconfigure k=<K>
//! demands v1 <n> <m>        ⟨prior snapshot, m entry lines⟩
//! plan v1 <W>               ⟨prior partition, W part lines⟩
//! <len> <e1> ... <elen>
//! demands v1 <n> <a>        ⟨added pairs, a entry lines⟩
//! demands v1 <n> <r>        ⟨removed pairs, r entry lines⟩
//! ```
//!
//! Part lines reference prior-snapshot edge ids (entry `i` of the prior
//! block, units expanded, is edge `i`). `RECONFIGURE` is `BATCH` restricted
//! to `reconfigure` stanzas — either verb admits them, and responses use
//! the same `RESULT` transcript shape. Because [`format_item`] covers the
//! stanza, the solve cache keys on the (prior plan, delta) content
//! automatically.
//!
//! # Responses
//!
//! ```text
//! RESULT <id> count=<N>
//! PLAN <i> sadms=<S> wavelengths=<W> timed_out=<bool> cancelled=<bool>
//! ERROR <i> <message>
//! END
//! ```
//!
//! plus `REJECTED <id> ...` for refused admissions, `PONG` for `PING`, a
//! single `STATS ...` line, and `BYE` acknowledging `SHUTDOWN`. `PLAN`
//! lines carry costs, not wall-clock — transcripts are pure functions of
//! `(request, master_seed)` and compare byte for byte across worker
//! counts.
//!
//! # Admission limits on the wire
//!
//! Parsing enforces [`crate::ServiceConfig::max_nodes`] /
//! [`crate::ServiceConfig::max_units`] *before* expanding a payload into a
//! graph or demand set, so an adversarial `demands v1 1000000000 …` header
//! is refused as text and never allocates.

use std::io;
use std::time::Duration;

use grooming::algorithm::Algorithm;
use grooming::partition::EdgePartition;
use grooming::solve::{DemandDelta, Instance};
use grooming_graph::graph::Graph;
use grooming_graph::ids::{EdgeId, NodeId};
use grooming_graph::io::{
    format_demand_list, format_topology, parse_demand_list, parse_topology, DemandList, ParseError,
};
use grooming_graph::topology::Topology;
use grooming_sonet::blsr::BlsrRing;
use grooming_sonet::demand::{DemandPair, DemandSet};
use grooming_sonet::weighted::WeightedDemandSet;

use crate::service::{
    BatchResponse, ItemOutcome, Request, ServiceConfig, StatsSnapshot, SubmitError,
};

/// A parsed top-level request.
#[derive(Debug)]
pub enum WireRequest {
    /// Liveness probe; answered with `PONG`.
    Ping,
    /// Stats snapshot; answered with one `STATS` line.
    Stats,
    /// Begin graceful shutdown; answered with `BYE`.
    Shutdown,
    /// A batch submission.
    Batch(Request),
}

/// Why a request block failed to parse (the connection can keep going —
/// the server answers `ERR <reason>` and reads the next block).
#[derive(Clone, Debug)]
pub enum WireError {
    /// A structurally invalid line.
    Malformed {
        /// What was being parsed.
        context: &'static str,
        /// The offending line.
        line: String,
    },
    /// A demand-list payload failed to parse.
    Demand(ParseError),
    /// The payload exceeds an admission limit; refused before expansion.
    TooLarge {
        /// What exceeded the limit.
        what: &'static str,
        /// The declared size.
        got: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The stream ended in the middle of a request block.
    UnexpectedEof,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed { context, line } => {
                write!(f, "malformed {context}: {line:?}")
            }
            WireError::Demand(e) => write!(f, "bad demand list: {e}"),
            WireError::TooLarge { what, got, limit } => {
                write!(f, "payload too large: {got} {what} exceeds limit {limit}")
            }
            WireError::UnexpectedEof => write!(f, "unexpected end of stream mid-request"),
        }
    }
}

impl std::error::Error for WireError {}

/// A parse failure or an underlying transport failure.
#[derive(Debug)]
pub enum RequestError {
    /// The socket/reader failed; the connection is dead.
    Io(io::Error),
    /// The bytes arrived but did not parse; the connection survives.
    Wire(WireError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "transport error: {e}"),
            RequestError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<WireError> for RequestError {
    fn from(e: WireError) -> Self {
        RequestError::Wire(e)
    }
}

fn malformed(context: &'static str, line: &str) -> RequestError {
    RequestError::Wire(WireError::Malformed {
        context,
        line: line.to_string(),
    })
}

fn next_line(rest: &mut dyn Iterator<Item = io::Result<String>>) -> Result<String, RequestError> {
    match rest.next() {
        None => Err(RequestError::Wire(WireError::UnexpectedEof)),
        Some(Err(e)) => Err(RequestError::Io(e)),
        Some(Ok(line)) => Ok(line),
    }
}

/// Parses one request block. `first` is the verb line (already read, known
/// non-empty); `rest` yields the following lines of the same stream.
/// Limits from `config` are enforced on declared sizes before any payload
/// is expanded.
pub fn parse_request(
    first: &str,
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
) -> Result<WireRequest, RequestError> {
    let first = first.trim();
    let mut toks = first.split_whitespace();
    let verb = toks.next().ok_or_else(|| malformed("request", first))?;
    match verb {
        "PING" | "STATS" | "SHUTDOWN" => {
            if toks.next().is_some() {
                return Err(malformed("request (verb takes no arguments)", first));
            }
            Ok(match verb {
                "PING" => WireRequest::Ping,
                "STATS" => WireRequest::Stats,
                _ => WireRequest::Shutdown,
            })
        }
        "BATCH" => parse_batch(first, toks, rest, config, false),
        "RECONFIGURE" => parse_batch(first, toks, rest, config, true),
        _ => Err(malformed("request (unknown verb)", first)),
    }
}

fn parse_batch(
    header: &str,
    fields: std::str::SplitWhitespace<'_>,
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
    reconfigure_only: bool,
) -> Result<WireRequest, RequestError> {
    let mut id = None;
    let mut count = None;
    let mut deadline = None;
    let mut algo = None;
    for tok in fields {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| malformed("BATCH header", header))?;
        match key {
            "id" => {
                id = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| malformed("BATCH id", header))?,
                )
            }
            "count" => {
                count = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| malformed("BATCH count", header))?,
                )
            }
            "deadline_ms" => {
                let ms = value
                    .parse::<u64>()
                    .map_err(|_| malformed("BATCH deadline_ms", header))?;
                deadline = Some(Duration::from_millis(ms));
            }
            "algo" => {
                algo = Some(
                    Algorithm::by_name(value)
                        .ok_or_else(|| malformed("BATCH algo (unknown name)", header))?,
                )
            }
            _ => return Err(malformed("BATCH header (unknown field)", header)),
        }
    }
    let id = id.ok_or_else(|| malformed("BATCH header (missing id=)", header))?;
    let count = count.ok_or_else(|| malformed("BATCH header (missing count=)", header))?;
    // A batch bigger than the whole queue can never be admitted; refuse it
    // as text before reading (or allocating for) a single stanza.
    if count > config.queue_capacity {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "items",
            got: count as u64,
            limit: config.queue_capacity as u64,
        }));
    }

    let mut items = Vec::new();
    for _ in 0..count {
        let item_line = next_line(rest)?;
        let item_line = item_line.trim().to_string();
        let is_reconfigure = item_line.split_whitespace().nth(1) == Some("reconfigure");
        if reconfigure_only && !is_reconfigure {
            return Err(malformed(
                "RECONFIGURE item (kind must be reconfigure)",
                &item_line,
            ));
        }
        let is_mesh = item_line.split_whitespace().nth(1) == Some("mesh");
        let instance = if is_reconfigure {
            parse_reconfigure_item(&item_line, rest, config)?
        } else if is_mesh {
            parse_mesh_item(&item_line, rest, config)?
        } else {
            let list = read_demand_block(rest, config)?;
            parse_item(&item_line, &list)?
        };
        items.push(instance);
    }
    let end = next_line(rest)?;
    if end.trim() != "END" {
        return Err(malformed("BATCH terminator (expected END)", end.trim()));
    }

    Ok(WireRequest::Batch(Request {
        id,
        items,
        deadline,
        algo,
    }))
}

/// Reads one strict demand-list block (header + exactly `m` entry lines)
/// off the stream, refusing oversized declarations before buffering.
fn read_demand_block(
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
) -> Result<DemandList, RequestError> {
    let header = next_line(rest)?;
    let header = header.trim();
    // Peek the declared sizes off the header so limits apply before any
    // entry line is read; full validation is parse_demand_list's job.
    let mut peek = header.split_whitespace().skip(2);
    let n = peek.next().and_then(|t| t.parse::<u64>().ok());
    let m = peek.next().and_then(|t| t.parse::<u64>().ok());
    let (n, m) = match (n, m) {
        (Some(n), Some(m)) => (n, m),
        // Not even header-shaped: let the real parser name the problem.
        _ => {
            return parse_demand_list(header).map_err(|e| RequestError::Wire(WireError::Demand(e)))
        }
    };
    if n > config.max_nodes as u64 {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "nodes",
            got: n,
            limit: config.max_nodes as u64,
        }));
    }
    // Every entry carries at least one unit, so m alone can trip the cap.
    if m > config.max_units {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "units",
            got: m,
            limit: config.max_units,
        }));
    }

    let mut text = String::with_capacity(header.len() + 8 * m as usize);
    text.push_str(header);
    text.push('\n');
    for _ in 0..m {
        let line = next_line(rest)?;
        text.push_str(line.trim());
        text.push('\n');
    }
    let list = parse_demand_list(&text).map_err(|e| RequestError::Wire(WireError::Demand(e)))?;
    if list.nodes < 2 {
        return Err(malformed("demand list (need at least 2 nodes)", header));
    }
    if list.total_units() > config.max_units {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "units",
            got: list.total_units(),
            limit: config.max_units,
        }));
    }
    Ok(list)
}

/// Reads one strict plan block (`plan v1 <W>` header + exactly `W` part
/// lines, each `<len> <e1> ... <elen>`), refusing oversized declarations
/// before buffering. Edge-id *semantics* (coverage of the prior snapshot)
/// are the solver's job — [`grooming::solve::SolveError::PriorPlan`]
/// surfaces as a per-item `ERROR`, not a wire error.
fn read_plan_block(
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
) -> Result<Vec<Vec<EdgeId>>, RequestError> {
    let header = next_line(rest)?;
    let header = header.trim();
    let mut toks = header.split_whitespace();
    let w = match (toks.next(), toks.next(), toks.next(), toks.next()) {
        (Some("plan"), Some("v1"), Some(w), None) => w.parse::<u64>().ok(),
        _ => None,
    };
    let Some(w) = w else {
        return Err(malformed("plan block header", header));
    };
    // A non-degenerate part holds at least one edge, and edges are capped
    // by the unit limit — so the part count is too.
    if w > config.max_units {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "plan parts",
            got: w,
            limit: config.max_units,
        }));
    }
    let mut parts = Vec::with_capacity(w as usize);
    for _ in 0..w {
        let line = next_line(rest)?;
        let line = line.trim();
        let mut toks = line.split_whitespace();
        let len = toks
            .next()
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| malformed("plan part line (length)", line))?;
        let mut part = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let id = toks
                .next()
                .and_then(|t| t.parse::<u32>().ok())
                .ok_or_else(|| malformed("plan part line (edge id)", line))?;
            part.push(EdgeId(id));
        }
        if toks.next().is_some() {
            return Err(malformed("plan part line (trailing tokens)", line));
        }
        parts.push(part);
    }
    Ok(parts)
}

/// Reads one strict topology block (`topology v1 <n> <m>` header plus
/// exactly `n` cap lines and `m` link lines) off the stream, refusing
/// oversized declarations before buffering — same discipline as
/// [`read_demand_block`].
fn read_topology_block(
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
) -> Result<Topology, RequestError> {
    let header = next_line(rest)?;
    let header = header.trim();
    let mut peek = header.split_whitespace().skip(2);
    let n = peek.next().and_then(|t| t.parse::<u64>().ok());
    let m = peek.next().and_then(|t| t.parse::<u64>().ok());
    let (n, m) = match (n, m) {
        (Some(n), Some(m)) => (n, m),
        // Not even header-shaped: let the real parser name the problem.
        _ => return parse_topology(header).map_err(|e| RequestError::Wire(WireError::Demand(e))),
    };
    if n > config.max_nodes as u64 {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "nodes",
            got: n,
            limit: config.max_nodes as u64,
        }));
    }
    // Physical links are bounded by the same budget as demand units: both
    // feed per-edge work in the solver.
    if m > config.max_units {
        return Err(RequestError::Wire(WireError::TooLarge {
            what: "links",
            got: m,
            limit: config.max_units,
        }));
    }

    let body_lines = n + m;
    let mut text = String::with_capacity(header.len() + 8 * body_lines as usize);
    text.push_str(header);
    text.push('\n');
    for _ in 0..body_lines {
        let line = next_line(rest)?;
        text.push_str(line.trim());
        text.push('\n');
    }
    parse_topology(&text).map_err(|e| RequestError::Wire(WireError::Demand(e)))
}

/// Parses one `mesh` stanza: the `ITEM` line, the physical topology, and
/// the demand list routed over it.
fn parse_mesh_item(
    line: &str,
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
) -> Result<Instance, RequestError> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some("ITEM") {
        return Err(malformed("item stanza (expected ITEM)", line));
    }
    let kind = toks.next();
    debug_assert_eq!(kind, Some("mesh"));
    let mut k = None;
    let mut routes = None;
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| malformed("ITEM field", line))?;
        let parsed = value
            .parse::<usize>()
            .map_err(|_| malformed("ITEM field value", line))?;
        match key {
            "k" => k = Some(parsed),
            "routes" => routes = Some(parsed),
            _ => return Err(malformed("ITEM (field not valid for this kind)", line)),
        }
    }
    let k = k.ok_or_else(|| malformed("ITEM (missing k=)", line))?;
    if k == 0 {
        return Err(malformed("ITEM (k must be >= 1)", line));
    }
    let routes = routes.ok_or_else(|| malformed("ITEM mesh (missing routes=)", line))?;
    if routes == 0 {
        return Err(malformed("ITEM mesh (routes must be >= 1)", line));
    }
    let topology = read_topology_block(rest, config)?;
    let list = read_demand_block(rest, config)?;
    if list.nodes != topology.num_nodes() {
        return Err(malformed(
            "mesh demands (node count differs from the topology)",
            line,
        ));
    }
    Ok(Instance::mesh(
        topology,
        demand_set_from_list(&list),
        k,
        routes,
    ))
}

/// Parses one `reconfigure` stanza: the `ITEM` line, then the prior
/// snapshot, the prior plan, the added pairs, and the removed pairs.
fn parse_reconfigure_item(
    line: &str,
    rest: &mut dyn Iterator<Item = io::Result<String>>,
    config: &ServiceConfig,
) -> Result<Instance, RequestError> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some("ITEM") {
        return Err(malformed("item stanza (expected ITEM)", line));
    }
    let kind = toks.next();
    debug_assert_eq!(kind, Some("reconfigure"));
    let mut k = None;
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| malformed("ITEM field", line))?;
        let parsed = value
            .parse::<usize>()
            .map_err(|_| malformed("ITEM field value", line))?;
        match key {
            "k" => k = Some(parsed),
            _ => return Err(malformed("ITEM (field not valid for this kind)", line)),
        }
    }
    let k = k.ok_or_else(|| malformed("ITEM (missing k=)", line))?;
    if k == 0 {
        return Err(malformed("ITEM (k must be >= 1)", line));
    }
    let prior_list = read_demand_block(rest, config)?;
    let parts = read_plan_block(rest, config)?;
    let added_list = read_demand_block(rest, config)?;
    let removed_list = read_demand_block(rest, config)?;
    if added_list.nodes != prior_list.nodes || removed_list.nodes != prior_list.nodes {
        return Err(malformed(
            "reconfigure delta (node count differs from the prior snapshot)",
            line,
        ));
    }
    Ok(Instance::reconfigure(
        demand_set_from_list(&prior_list),
        EdgePartition::new(parts),
        DemandDelta::new(pairs_from_list(&added_list), pairs_from_list(&removed_list)),
        k,
    ))
}

fn parse_item(line: &str, list: &DemandList) -> Result<Instance, RequestError> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some("ITEM") {
        return Err(malformed("item stanza (expected ITEM)", line));
    }
    let kind = toks.next().ok_or_else(|| malformed("ITEM kind", line))?;
    let mut k = None;
    let mut budget = None;
    let mut sadms = None;
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| malformed("ITEM field", line))?;
        let parsed = value
            .parse::<usize>()
            .map_err(|_| malformed("ITEM field value", line))?;
        match key {
            "k" => k = Some(parsed),
            "budget" => budget = Some(parsed),
            "sadms" => sadms = Some(parsed),
            _ => return Err(malformed("ITEM field (unknown key)", line)),
        }
    }
    let k = k.ok_or_else(|| malformed("ITEM (missing k=)", line))?;
    if k == 0 {
        return Err(malformed("ITEM (k must be >= 1)", line));
    }
    // Fields that a kind does not consume are rejected, not ignored.
    let instance = match kind {
        "upsr" if budget.is_none() && sadms.is_none() => Instance::upsr(graph_from_list(list), k),
        "ring" if budget.is_none() && sadms.is_none() => {
            Instance::ring(demand_set_from_list(list), k)
        }
        "budgeted" if sadms.is_none() => {
            let budget =
                budget.ok_or_else(|| malformed("ITEM budgeted (missing budget=)", line))?;
            if budget == 0 {
                return Err(malformed("ITEM budgeted (budget must be >= 1)", line));
            }
            Instance::budgeted(graph_from_list(list), k, budget)
        }
        "weighted" if budget.is_none() && sadms.is_none() => {
            Instance::weighted(weighted_from_list(list), k)
        }
        "online" if budget.is_none() => {
            let online_sadms =
                sadms.ok_or_else(|| malformed("ITEM online (missing sadms=)", line))?;
            Instance::OnlineRearrange {
                demands: demand_set_from_list(list),
                k,
                online_sadms,
            }
        }
        "blsr" if budget.is_none() && sadms.is_none() => {
            Instance::blsr(BlsrRing::new(list.nodes), demand_set_from_list(list), k)
        }
        "upsr" | "ring" | "budgeted" | "weighted" | "online" | "blsr" => {
            return Err(malformed("ITEM (field not valid for this kind)", line))
        }
        _ => return Err(malformed("ITEM (unknown kind)", line)),
    };
    Ok(instance)
}

fn graph_from_list(list: &DemandList) -> Graph {
    let mut g = Graph::new(list.nodes);
    for &(u, v, units) in &list.entries {
        for _ in 0..units {
            g.add_edge(NodeId(u), NodeId(v));
        }
    }
    g
}

fn demand_set_from_list(list: &DemandList) -> DemandSet {
    let mut d = DemandSet::new(list.nodes);
    for &(u, v, units) in &list.entries {
        for _ in 0..units {
            d.add(NodeId(u), NodeId(v));
        }
    }
    d
}

fn pairs_from_list(list: &DemandList) -> Vec<DemandPair> {
    let mut pairs = Vec::new();
    for &(u, v, units) in &list.entries {
        for _ in 0..units {
            pairs.push(DemandPair::new(NodeId(u), NodeId(v)));
        }
    }
    pairs
}

fn weighted_from_list(list: &DemandList) -> WeightedDemandSet {
    let mut w = WeightedDemandSet::new(list.nodes);
    for &(u, v, units) in &list.entries {
        w.add(NodeId(u), NodeId(v), units);
    }
    w
}

/// Why an in-process value cannot be put on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireFormatError {
    /// The instance kind has no wire encoding (e.g. multi-ring).
    NotWireable(&'static str),
}

impl std::fmt::Display for WireFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFormatError::NotWireable(what) => {
                write!(f, "not representable on the wire: {what}")
            }
        }
    }
}

impl std::error::Error for WireFormatError {}

/// Serializes a request block, the inverse of [`parse_request`].
///
/// Non-default tree strategies flatten to their canonical wire spelling
/// (`spant-euler` always means the BFS strategy on the wire).
pub fn format_batch_request(request: &Request) -> Result<String, WireFormatError> {
    format_request_with_verb("BATCH", request)
}

/// Serializes a request under the `RECONFIGURE` verb — `BATCH` restricted
/// to warm-start items; any other kind is refused.
pub fn format_reconfigure_request(request: &Request) -> Result<String, WireFormatError> {
    if request
        .items
        .iter()
        .any(|i| !matches!(i, Instance::Reconfigure { .. }))
    {
        return Err(WireFormatError::NotWireable(
            "RECONFIGURE carries only reconfigure items",
        ));
    }
    format_request_with_verb("RECONFIGURE", request)
}

fn format_request_with_verb(verb: &str, request: &Request) -> Result<String, WireFormatError> {
    let mut out = format!("{verb} id={} count={}", request.id, request.items.len());
    if let Some(deadline) = request.deadline {
        out.push_str(&format!(" deadline_ms={}", deadline.as_millis()));
    }
    if let Some(algo) = request.algo {
        out.push_str(&format!(" algo={}", algo.wire_name()));
    }
    out.push('\n');
    for item in &request.items {
        out.push_str(&format_item(item)?);
    }
    out.push_str("END\n");
    Ok(out)
}

/// Serializes one item stanza (`ITEM` line + demand-list block).
pub fn format_item(instance: &Instance) -> Result<String, WireFormatError> {
    let (head, list) = match instance {
        Instance::Upsr { graph, k } => (format!("ITEM upsr k={k}"), graph_to_list(graph)),
        Instance::Ring { demands, k } => (format!("ITEM ring k={k}"), demand_set_to_list(demands)),
        Instance::Budgeted { graph, k, budget } => (
            format!("ITEM budgeted k={k} budget={budget}"),
            graph_to_list(graph),
        ),
        Instance::WeightedSplittable { demands, k } => {
            (format!("ITEM weighted k={k}"), weighted_to_list(demands))
        }
        Instance::OnlineRearrange {
            demands,
            k,
            online_sadms,
        } => (
            format!("ITEM online k={k} sadms={online_sadms}"),
            demand_set_to_list(demands),
        ),
        Instance::Blsr { ring, demands, k } => {
            if ring.num_nodes() != demands.num_nodes() {
                return Err(WireFormatError::NotWireable(
                    "blsr ring size differs from demand node count",
                ));
            }
            (format!("ITEM blsr k={k}"), demand_set_to_list(demands))
        }
        Instance::Reconfigure {
            demands,
            prior,
            delta,
            k,
        } => {
            let n = demands.num_nodes();
            let mut out = format!("ITEM reconfigure k={k}\n");
            out.push_str(&format_demand_list(&demand_set_to_list(demands)));
            out.push_str(&format!("plan v1 {}\n", prior.parts().len()));
            for part in prior.parts() {
                out.push_str(&part.len().to_string());
                for e in part {
                    out.push(' ');
                    out.push_str(&e.index().to_string());
                }
                out.push('\n');
            }
            out.push_str(&format_demand_list(&pairs_to_list(n, &delta.added)));
            out.push_str(&format_demand_list(&pairs_to_list(n, &delta.removed)));
            return Ok(out);
        }
        Instance::Mesh {
            topology,
            demands,
            k,
            routes,
        } => {
            let mut out = format!("ITEM mesh k={k} routes={routes}\n");
            out.push_str(&format_topology(topology));
            out.push_str(&format_demand_list(&demand_set_to_list(demands)));
            return Ok(out);
        }
        Instance::MultiRing { .. } => return Err(WireFormatError::NotWireable("multi-ring")),
        _ => return Err(WireFormatError::NotWireable("unknown instance kind")),
    };
    Ok(format!("{head}\n{}", format_demand_list(&list)))
}

fn pairs_to_list(nodes: usize, pairs: &[DemandPair]) -> DemandList {
    DemandList {
        nodes,
        entries: pairs.iter().map(|p| (p.lo().0, p.hi().0, 1)).collect(),
    }
}

fn graph_to_list(graph: &Graph) -> DemandList {
    DemandList {
        nodes: graph.num_nodes(),
        entries: graph
            .edges()
            .map(|e| {
                let (u, v) = graph.endpoints(e);
                (u.0, v.0, 1)
            })
            .collect(),
    }
}

fn demand_set_to_list(demands: &DemandSet) -> DemandList {
    DemandList {
        nodes: demands.num_nodes(),
        entries: demands
            .pairs()
            .iter()
            .map(|p| (p.lo().0, p.hi().0, 1))
            .collect(),
    }
}

fn weighted_to_list(demands: &WeightedDemandSet) -> DemandList {
    DemandList {
        nodes: demands.num_nodes(),
        entries: demands
            .demands()
            .iter()
            .map(|d| (d.pair.lo().0, d.pair.hi().0, d.units))
            .collect(),
    }
}

/// Serializes a batch response. This is *the* transcript shape: the TCP
/// server and [`crate::Client::solve_transcript`] both emit these bytes,
/// and they are a pure function of `(request, master_seed)` — no
/// wall-clock, no worker identity.
pub fn format_batch_response(response: &BatchResponse) -> String {
    let mut out = format!("RESULT {} count={}\n", response.id, response.items.len());
    for (i, item) in response.items.iter().enumerate() {
        match item {
            ItemOutcome::Solved {
                plan,
                timed_out,
                cancelled,
            } => {
                out.push_str(&format!(
                    "PLAN {i} sadms={} wavelengths={} timed_out={timed_out} cancelled={cancelled}\n",
                    plan.sadm_cost(),
                    plan.wavelengths(),
                ));
            }
            ItemOutcome::Failed { error } => {
                out.push_str(&format!("ERROR {i} {error}\n"));
            }
        }
    }
    out.push_str("END\n");
    out
}

/// Serializes an admission refusal. Every numeric field is a deterministic
/// function of the queue contents at rejection time, so saturation tests
/// can assert rejection lines byte for byte.
pub fn format_rejected(id: u64, error: &SubmitError) -> String {
    match error {
        SubmitError::QueueFull {
            queue_depth,
            queued_cost,
        } => {
            format!("REJECTED {id} queue_full depth={queue_depth} cost={queued_cost}\n")
        }
        SubmitError::Shed {
            estimated_wait_ms,
            deadline_ms,
        } => {
            format!("REJECTED {id} shed wait_ms={estimated_wait_ms} deadline_ms={deadline_ms}\n")
        }
        SubmitError::ShuttingDown => format!("REJECTED {id} shutting_down\n"),
    }
}

/// Serializes a stats snapshot as a single `STATS` line.
///
/// Counter fields are deterministic; the trailing `qwait_*`/`solve_*`
/// percentile fields are wall-clock observations (histogram bucket upper
/// bounds, in µs) and are the one part of the protocol that is *not*
/// transcript-stable — determinism checks digest `BATCH` responses, not
/// `STATS` lines.
pub fn format_stats(snapshot: &StatsSnapshot) -> String {
    let c = &snapshot.counters;
    let s = &snapshot.solve;
    format!(
        "STATS accepted_requests={} accepted_items={} rejected_requests={} shed_requests={} \
         completed_items={} reconfigures_completed={} failed_items={} timed_out_items={} \
         cancelled_items={} \
         cache_hits={} cache_misses={} cache_entries={} cache_evictions={} \
         queue_depth={} queued_cost={} in_flight={} workers={} \
         attempts={} swaps_evaluated={} scratch_resets={} stage_calls={} \
         parts_repaired={} sadms_moved={} \
         routes_evaluated={} groom_ports_used={} blocked_demands={} lower_bound={} \
         qwait_p50_us={} qwait_p99_us={} solve_p50_us={} solve_p99_us={}\n",
        c.accepted_requests,
        c.accepted_items,
        c.rejected_requests,
        c.shed_requests,
        c.completed_items,
        c.reconfigures_completed,
        c.failed_items,
        c.timed_out_items,
        c.cancelled_items,
        c.cache_hits,
        c.cache_misses,
        snapshot.cache_entries,
        snapshot.cache_evictions,
        snapshot.queue_depth,
        snapshot.queued_cost,
        snapshot.in_flight,
        snapshot.workers,
        s.attempts,
        s.swaps_evaluated,
        s.scratch_resets,
        s.stage_calls(),
        s.parts_repaired,
        s.sadms_moved,
        s.routes_evaluated,
        s.groom_ports_used,
        s.blocked_demands,
        s.lower_bound,
        snapshot.queue_wait.percentile(0.5).as_micros(),
        snapshot.queue_wait.percentile(0.99).as_micros(),
        snapshot.solve_time.percentile(0.5).as_micros(),
        snapshot.solve_time.percentile(0.99).as_micros(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ItemError, ServiceConfig};
    use grooming::solve::{SolveContext, Solver};
    use grooming_graph::generators;
    use grooming_graph::topology::NodeCaps;
    use grooming_sonet::multiring::{rn, MultiRingNetwork};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn parse_str(text: &str, config: &ServiceConfig) -> Result<WireRequest, RequestError> {
        let mut lines = text.lines().map(|l| Ok(l.to_string()));
        let first = lines.next().unwrap().unwrap();
        parse_request(&first, &mut lines, config)
    }

    fn sample_request() -> Request {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = generators::gnm(8, 14, &mut rng);
        let demands = DemandSet::random(9, 16, &mut rng);
        let mut weighted = WeightedDemandSet::new(6);
        weighted.add(NodeId(0), NodeId(3), 3);
        weighted.add(NodeId(1), NodeId(4), 1);
        // A 3×3 grid topology with one capacitated core node and one
        // non-unit weight, so the mesh stanza exercises every token form.
        let mut caps = vec![NodeCaps::UNLIMITED; 9];
        caps[4] = NodeCaps::new(6, 3);
        let mut weights = vec![1u32; 12];
        weights[0] = 2;
        let topology = Topology::new(generators::grid(3, 3), weights, caps);
        Request {
            id: 42,
            items: vec![
                Instance::upsr(graph.clone(), 4),
                Instance::ring(demands.clone(), 3),
                Instance::budgeted(graph, 4, 7),
                Instance::weighted(weighted, 4),
                Instance::OnlineRearrange {
                    demands: demands.clone(),
                    k: 3,
                    online_sadms: 12,
                },
                Instance::mesh(topology, demands.clone(), 3, 2),
                Instance::blsr(BlsrRing::new(9), demands, 3),
            ],
            deadline: Some(Duration::from_millis(250)),
            algo: Some(Algorithm::Brauner),
        }
    }

    #[test]
    fn batch_request_round_trips_byte_for_byte() {
        let request = sample_request();
        let wire = format_batch_request(&request).unwrap();
        let parsed = match parse_str(&wire, &ServiceConfig::default()).unwrap() {
            WireRequest::Batch(r) => r,
            other => panic!("expected batch, got {other:?}"),
        };
        assert_eq!(parsed.id, request.id);
        assert_eq!(parsed.deadline, request.deadline);
        assert_eq!(parsed.algo, request.algo);
        assert_eq!(parsed.items.len(), request.items.len());
        // Instance has no PartialEq; format → parse → format must be the
        // identity on the wire bytes.
        assert_eq!(format_batch_request(&parsed).unwrap(), wire);
    }

    fn sample_reconfigure() -> Instance {
        let mut rng = StdRng::seed_from_u64(23);
        let demands = DemandSet::random(8, 12, &mut rng);
        let prior =
            grooming::algorithm::Algorithm::SpanTEuler(grooming_graph::spanning::TreeStrategy::Bfs)
                .solve(
                    &Instance::ring(demands.clone(), 3),
                    &mut SolveContext::seeded(2),
                )
                .unwrap()
                .plan
                .partition()
                .expect("ring plan")
                .clone();
        let delta = DemandDelta::new(
            vec![DemandPair::new(NodeId(1), NodeId(6))],
            vec![demands.pairs()[2]],
        );
        Instance::reconfigure(demands, prior, delta, 3)
    }

    #[test]
    fn reconfigure_request_round_trips_byte_for_byte() {
        let request = Request::batch(7, vec![sample_reconfigure(), sample_reconfigure()]);
        let wire = format_reconfigure_request(&request).unwrap();
        assert!(wire.starts_with("RECONFIGURE id=7 count=2\n"));
        let parsed = match parse_str(&wire, &ServiceConfig::default()).unwrap() {
            WireRequest::Batch(r) => r,
            other => panic!("expected batch, got {other:?}"),
        };
        assert_eq!(parsed.id, request.id);
        assert_eq!(parsed.items.len(), 2);
        assert_eq!(format_reconfigure_request(&parsed).unwrap(), wire);
        // The same stanzas ride in a plain BATCH too.
        let batch_wire = format_batch_request(&request).unwrap();
        let reparsed = match parse_str(&batch_wire, &ServiceConfig::default()).unwrap() {
            WireRequest::Batch(r) => r,
            other => panic!("expected batch, got {other:?}"),
        };
        assert_eq!(format_batch_request(&reparsed).unwrap(), batch_wire);
    }

    #[test]
    fn reconfigure_verb_rejects_other_item_kinds() {
        let config = ServiceConfig::default();
        let text = "RECONFIGURE id=1 count=1\nITEM upsr k=4\ndemands v1 2 1\n0 1\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::Malformed { .. }))
        ));
        let mixed = Request::batch(
            1,
            vec![
                sample_reconfigure(),
                Instance::ring(DemandSet::random(6, 5, &mut StdRng::seed_from_u64(1)), 2),
            ],
        );
        assert_eq!(
            format_reconfigure_request(&mixed),
            Err(WireFormatError::NotWireable(
                "RECONFIGURE carries only reconfigure items"
            ))
        );
    }

    #[test]
    fn malformed_reconfigure_stanzas_error_instead_of_panicking() {
        let config = ServiceConfig::default();
        let cases = [
            // Plan header is not a plan header.
            "BATCH id=1 count=1\nITEM reconfigure k=2\ndemands v1 3 1\n0 1\nplans v1 1\n1 0\n\
             demands v1 3 0\ndemands v1 3 0\nEND\n",
            // Delta node count differs from the prior snapshot.
            "BATCH id=1 count=1\nITEM reconfigure k=2\ndemands v1 3 1\n0 1\nplan v1 1\n1 0\n\
             demands v1 4 0\ndemands v1 3 0\nEND\n",
            // Fields from other kinds are rejected.
            "BATCH id=1 count=1\nITEM reconfigure k=2 budget=3\ndemands v1 3 1\n0 1\n\
             plan v1 1\n1 0\ndemands v1 3 0\ndemands v1 3 0\nEND\n",
            // Part line with trailing garbage.
            "BATCH id=1 count=1\nITEM reconfigure k=2\ndemands v1 3 1\n0 1\nplan v1 1\n1 0 9\n\
             demands v1 3 0\ndemands v1 3 0\nEND\n",
        ];
        for text in cases {
            assert!(
                matches!(parse_str(text, &config), Err(RequestError::Wire(_))),
                "expected wire error for {text:?}"
            );
        }
        // A plan declaring more parts than the unit cap is refused off the
        // header, before any part line is read.
        let config = ServiceConfig {
            max_units: 4,
            ..ServiceConfig::default()
        };
        let text = "BATCH id=1 count=1\nITEM reconfigure k=2\ndemands v1 3 1\n0 1\n\
                    plan v1 4000000000\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "plan parts",
                ..
            }))
        ));
    }

    #[test]
    fn mesh_stanzas_parse_and_malformed_ones_error() {
        let config = ServiceConfig::default();
        // A minimal well-formed mesh stanza parses into a mesh instance.
        let text = "BATCH id=1 count=1\nITEM mesh k=2 routes=2\ntopology v1 3 3\n* *\n* *\n* *\n\
                    0 1\n1 2\n2 0\ndemands v1 3 2\n0 1\n1 2\nEND\n";
        let parsed = match parse_str(text, &config).unwrap() {
            WireRequest::Batch(r) => r,
            other => panic!("expected batch, got {other:?}"),
        };
        assert!(matches!(
            parsed.items[0],
            Instance::Mesh {
                k: 2,
                routes: 2,
                ..
            }
        ));
        let cases = [
            // Missing routes=.
            "BATCH id=1 count=1\nITEM mesh k=2\ntopology v1 3 3\n* *\n* *\n* *\n\
             0 1\n1 2\n2 0\ndemands v1 3 1\n0 1\nEND\n",
            // Zero route fan-out.
            "BATCH id=1 count=1\nITEM mesh k=2 routes=0\ntopology v1 3 3\n* *\n* *\n* *\n\
             0 1\n1 2\n2 0\ndemands v1 3 1\n0 1\nEND\n",
            // Fields from other kinds are rejected.
            "BATCH id=1 count=1\nITEM mesh k=2 routes=2 budget=3\ntopology v1 3 3\n* *\n* *\n\
             * *\n0 1\n1 2\n2 0\ndemands v1 3 1\n0 1\nEND\n",
            // Demand node count differs from the topology.
            "BATCH id=1 count=1\nITEM mesh k=2 routes=2\ntopology v1 3 3\n* *\n* *\n* *\n\
             0 1\n1 2\n2 0\ndemands v1 4 1\n0 1\nEND\n",
            // Zero-weight link.
            "BATCH id=1 count=1\nITEM mesh k=2 routes=2\ntopology v1 3 3\n* *\n* *\n* *\n\
             0 1 0\n1 2\n2 0\ndemands v1 3 1\n0 1\nEND\n",
            // Cap line with the wrong arity.
            "BATCH id=1 count=1\nITEM mesh k=2 routes=2\ntopology v1 3 3\n* * *\n* *\n* *\n\
             0 1\n1 2\n2 0\ndemands v1 3 1\n0 1\nEND\n",
        ];
        for text in cases {
            assert!(
                matches!(parse_str(text, &config), Err(RequestError::Wire(_))),
                "expected wire error for {text:?}"
            );
        }
        // Oversized topology declarations are refused off the header,
        // before a single cap or link line is buffered.
        let config = ServiceConfig {
            max_nodes: 16,
            max_units: 10,
            ..ServiceConfig::default()
        };
        let text = "BATCH id=1 count=1\nITEM mesh k=2 routes=2\ntopology v1 1000000000 1\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "nodes",
                ..
            }))
        ));
        let text = "BATCH id=1 count=1\nITEM mesh k=2 routes=2\ntopology v1 4 4000000000\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "links",
                ..
            }))
        ));
    }

    #[test]
    fn simple_verbs_parse_and_reject_arguments() {
        let config = ServiceConfig::default();
        assert!(matches!(
            parse_str("PING\n", &config),
            Ok(WireRequest::Ping)
        ));
        assert!(matches!(
            parse_str("  STATS \n", &config),
            Ok(WireRequest::Stats)
        ));
        assert!(matches!(
            parse_str("SHUTDOWN\n", &config),
            Ok(WireRequest::Shutdown)
        ));
        assert!(matches!(
            parse_str("PING now\n", &config),
            Err(RequestError::Wire(WireError::Malformed { .. }))
        ));
        assert!(matches!(
            parse_str("HELLO\n", &config),
            Err(RequestError::Wire(WireError::Malformed { .. }))
        ));
    }

    #[test]
    fn oversized_declarations_are_refused_before_expansion() {
        let config = ServiceConfig {
            max_nodes: 16,
            max_units: 10,
            queue_capacity: 4,
            ..ServiceConfig::default()
        };
        // A huge node count is refused off the header alone.
        let text = "BATCH id=1 count=1\nITEM upsr k=4\ndemands v1 1000000000 1\n0 1\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "nodes",
                ..
            }))
        ));
        // So is an entry count beyond the unit cap (units >= entries).
        let text = "BATCH id=1 count=1\nITEM upsr k=4\ndemands v1 4 4000000000\n0 1\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "units",
                ..
            }))
        ));
        // Weighted units multiply out; the cap applies to the total.
        let text = "BATCH id=1 count=1\nITEM weighted k=4\ndemands v1 4 2\n0 1 9\n1 2 9\nEND\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "units",
                ..
            }))
        ));
        // A batch that can never fit the queue is refused as text.
        let text = "BATCH id=1 count=5\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::TooLarge {
                what: "items",
                ..
            }))
        ));
    }

    #[test]
    fn malformed_blocks_error_instead_of_panicking() {
        let config = ServiceConfig::default();
        let cases = [
            "BATCH count=1\nITEM upsr k=4\ndemands v1 2 0\nEND\n", // missing id
            "BATCH id=1\nEND\n",                                   // missing count
            "BATCH id=1 count=1 algo=nope\nITEM upsr k=4\ndemands v1 2 0\nEND\n",
            "BATCH id=1 count=1\nITEM upsr\ndemands v1 2 0\nEND\n", // missing k
            "BATCH id=1 count=1\nITEM upsr k=0\ndemands v1 2 0\nEND\n",
            "BATCH id=1 count=1\nITEM upsr k=4 budget=3\ndemands v1 2 0\nEND\n",
            "BATCH id=1 count=1\nITEM budgeted k=4\ndemands v1 2 0\nEND\n", // missing budget
            "BATCH id=1 count=1\nITEM online k=4\ndemands v1 2 0\nEND\n",   // missing sadms
            "BATCH id=1 count=1\nITEM warp k=4\ndemands v1 2 0\nEND\n",     // unknown kind
            "BATCH id=1 count=1\nITEM upsr k=4\ndemands v1 1 0\nEND\n",     // < 2 nodes
            "BATCH id=1 count=1\nITEM upsr k=4\ndemands v2 2 0\nEND\n",     // bad version
            "BATCH id=1 count=1\nITEM upsr k=4\ndemands v1 2 1\n0 0\nEND\n", // self-demand
            "BATCH id=1 count=1\nITEM upsr k=4\ndemands v1 2 1\n0 1\nEXTRA\n", // no END
        ];
        for text in cases {
            assert!(
                matches!(parse_str(text, &config), Err(RequestError::Wire(_))),
                "expected wire error for {text:?}"
            );
        }
        // Truncation mid-block is EOF, not a panic.
        let text = "BATCH id=1 count=2\nITEM upsr k=4\ndemands v1 3 2\n0 1\n";
        assert!(matches!(
            parse_str(text, &config),
            Err(RequestError::Wire(WireError::UnexpectedEof))
        ));
    }

    #[test]
    fn multi_ring_instances_are_not_wireable() {
        let mut network = MultiRingNetwork::new(vec![4, 4]);
        network.add_gateway(rn(0, 0), rn(1, 0));
        let instance = Instance::multi_ring(network, vec![(rn(0, 1), rn(1, 2))], 4);
        assert_eq!(
            format_item(&instance),
            Err(WireFormatError::NotWireable("multi-ring"))
        );
        let request = Request::batch(1, vec![instance]);
        assert!(format_batch_request(&request).is_err());
    }

    #[test]
    fn response_transcript_has_the_documented_shape() {
        let graph = generators::gnm(8, 14, &mut StdRng::seed_from_u64(3));
        let mut ctx = SolveContext::seeded(1);
        let solution = Algorithm::Goldschmidt
            .solve(&Instance::upsr(graph, 4), &mut ctx)
            .unwrap();
        let response = BatchResponse {
            id: 7,
            items: vec![
                ItemOutcome::Solved {
                    plan: solution.plan.clone(),
                    timed_out: false,
                    cancelled: false,
                },
                ItemOutcome::Failed {
                    error: ItemError::TooLarge {
                        what: "nodes",
                        got: 99,
                        limit: 8,
                    },
                },
            ],
        };
        let transcript = format_batch_response(&response);
        let lines: Vec<&str> = transcript.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "RESULT 7 count=2");
        assert_eq!(
            lines[1],
            format!(
                "PLAN 0 sadms={} wavelengths={} timed_out=false cancelled=false",
                solution.plan.sadm_cost(),
                solution.plan.wavelengths()
            )
        );
        assert_eq!(
            lines[2],
            "ERROR 1 instance too large: 99 nodes exceeds limit 8"
        );
        assert_eq!(lines[3], "END");
    }

    #[test]
    fn rejections_and_stats_format_one_line_each() {
        assert_eq!(
            format_rejected(
                3,
                &SubmitError::QueueFull {
                    queue_depth: 17,
                    queued_cost: 4096
                }
            ),
            "REJECTED 3 queue_full depth=17 cost=4096\n"
        );
        assert_eq!(
            format_rejected(
                5,
                &SubmitError::Shed {
                    estimated_wait_ms: 900,
                    deadline_ms: 250
                }
            ),
            "REJECTED 5 shed wait_ms=900 deadline_ms=250\n"
        );
        assert_eq!(
            format_rejected(4, &SubmitError::ShuttingDown),
            "REJECTED 4 shutting_down\n"
        );
        let counters = crate::ServiceCounters {
            completed_items: 9,
            reconfigures_completed: 4,
            ..Default::default()
        };
        let snapshot = StatsSnapshot {
            counters,
            queue_depth: 2,
            queued_cost: 640,
            in_flight: 1,
            workers: 3,
            solve: Default::default(),
            queue_wait: Default::default(),
            solve_time: Default::default(),
            cache_entries: 0,
            cache_evictions: 0,
        };
        let line = format_stats(&snapshot);
        assert!(line.starts_with("STATS accepted_requests=0 accepted_items=0 "));
        assert!(line.contains(" completed_items=9 reconfigures_completed=4 "));
        assert!(line.contains(" queue_depth=2 queued_cost=640 in_flight=1 workers=3 "));
        assert!(line.contains(" cache_hits=0 cache_misses=0 "));
        assert!(line.ends_with("qwait_p50_us=0 qwait_p99_us=0 solve_p50_us=0 solve_p99_us=0\n"));
        assert_eq!(line.lines().count(), 1);
    }
}
