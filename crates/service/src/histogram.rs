//! A fixed-bucket, log-spaced latency histogram — no dependencies, no
//! allocation, O(1) record, bounded memory forever.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts samples in
//! `[2^i, 2^(i+1))` µs (bucket 0 additionally absorbs sub-microsecond
//! samples, the top bucket absorbs everything above ~36 minutes). That
//! gives ~3 significant bits of resolution across nine decades — plenty
//! for queue-wait and solve-time distributions — while keeping the whole
//! histogram 33 machine words, cheap enough to clone into every
//! [`crate::StatsSnapshot`].
//!
//! Percentiles are read as the *upper bound* of the bucket containing the
//! requested rank, so a reported p99 never understates the observed
//! latency by more than one bucket ratio (2×).

use std::time::Duration;

/// Number of log2 buckets: `[1µs, 2µs) … [2^31µs, ∞)`.
pub const NUM_BUCKETS: usize = 32;

/// A log2-bucketed histogram of [`Duration`] samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    total: Duration,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a sample falls into.
    fn bucket(sample: Duration) -> usize {
        let us = sample.as_micros().max(1) as u64;
        // floor(log2(us)), clamped to the top bucket.
        ((63 - us.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.counts[Self::bucket(sample)] += 1;
        self.count += 1;
        self.total += sample;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Arithmetic mean of the recorded samples ([`Duration::ZERO`] when
    /// empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count.min(u32::MAX as u64) as u32
        }
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the sample of that rank; [`Duration::ZERO`] when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_micros(1u64 << (i + 1).min(63));
            }
        }
        // Unreachable while counts sum to count; keep a sane fallback.
        Duration::from_micros(u64::MAX)
    }

    /// Folds `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
    }

    /// The non-empty buckets as `(lower_µs, upper_µs, count)`, in
    /// ascending latency order — the display form the CLI summary prints.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, 1u64 << (i + 1).min(63), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_log_spaced_buckets() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(10)); // sub-µs clamps to bucket 0
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(1));
        h.record(Duration::from_secs(3600)); // beyond top bucket, clamped
        assert_eq!(h.count(), 5);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (1, 2, 2)); // 10ns + 1µs
        assert_eq!(buckets[1], (2, 4, 1)); // 3µs
        assert_eq!(buckets[2], (1 << 9, 1 << 10, 1)); // 1ms = 1000µs ∈ [512, 1024)
        assert_eq!(buckets[3].2, 1); // the clamped hour
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        h.record(Duration::from_millis(50)); // bucket [32768, 65536)µs
        assert_eq!(h.percentile(0.5), Duration::from_micros(16));
        assert_eq!(h.percentile(0.99), Duration::from_micros(16));
        assert_eq!(h.percentile(1.0), Duration::from_micros(65536));
        assert_eq!(Histogram::new().percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn merge_is_bucket_wise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(5));
        b.record(Duration::from_secs(1));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.total(), a.total() + b.total());
        let mut direct = Histogram::new();
        direct.record(Duration::from_micros(5));
        direct.record(Duration::from_micros(5));
        direct.record(Duration::from_secs(1));
        assert_eq!(merged, direct);
    }

    #[test]
    fn mean_tracks_total_over_count() {
        let mut h = Histogram::new();
        h.record(Duration::from_millis(2));
        h.record(Duration::from_millis(4));
        assert_eq!(h.mean(), Duration::from_millis(3));
        assert_eq!(Histogram::new().mean(), Duration::ZERO);
    }
}
