//! Rooted-forest utilities: tree paths, subtree parity sums, and
//! path decompositions.
//!
//! These are the tree-side workhorses of the grooming algorithms:
//!
//! * [`tree_path`] — the unique path in a spanning forest between two nodes,
//!   used by the low-degree tree local search and by tests.
//! * [`odd_parity_tree_edges`] — the linear-time computation of the paper's
//!   `E_odd` set. Lemma 4 pairs the odd-degree nodes of `G\T` arbitrarily and
//!   asks which tree edges lie on an odd number of the pairing's tree paths;
//!   the parity is independent of the pairing (removing a tree edge `e`
//!   splits the tree in two, and the number of crossing pairs is congruent
//!   mod 2 to the number of marked nodes on either side), so a single
//!   bottom-up subtree count suffices.
//! * [`decompose_into_paths`] — edge-disjoint leaf-to-leaf path cover of a
//!   forest, the backbone factory for the Wang–Gu ICC'06 baseline.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::spanning::SpanningForest;
use crate::walk::Walk;
use crate::workspace::Workspace;

/// Edges of the unique forest path between `u` and `v`, ordered from `u`
/// to `v`. Returns `None` if `u` and `v` lie in different trees.
pub fn tree_path(g: &Graph, forest: &SpanningForest, u: NodeId, v: NodeId) -> Option<Vec<EdgeId>> {
    tree_path_walk(g, forest, u, v).map(|w| w.edges().to_vec())
}

/// The unique forest path between `u` and `v` as a [`Walk`] from `u` to `v`.
/// Returns `None` if they are in different trees. `u == v` yields a
/// singleton walk.
pub fn tree_path_walk(g: &Graph, forest: &SpanningForest, u: NodeId, v: NodeId) -> Option<Walk> {
    // Climb both nodes to their common ancestor using depths.
    let mut up_u: Vec<EdgeId> = Vec::new(); // edges from u upward
    let mut up_v: Vec<EdgeId> = Vec::new(); // edges from v upward
    let (mut a, mut b) = (u, v);
    while forest.depth[a.index()] > forest.depth[b.index()] {
        let (p, e) = forest.parent[a.index()]?;
        up_u.push(e);
        a = p;
    }
    while forest.depth[b.index()] > forest.depth[a.index()] {
        let (p, e) = forest.parent[b.index()]?;
        up_v.push(e);
        b = p;
    }
    while a != b {
        let (pa, ea) = forest.parent[a.index()]?;
        let (pb, eb) = forest.parent[b.index()]?;
        up_u.push(ea);
        up_v.push(eb);
        a = pa;
        b = pb;
    }
    // Path = u -> lca (up_u) followed by lca -> v (reverse of up_v).
    let mut walk = Walk::singleton(u);
    for &e in &up_u {
        walk.push(g, e);
    }
    for &e in up_v.iter().rev() {
        walk.push(g, e);
    }
    debug_assert_eq!(walk.end(), v);
    Some(walk)
}

/// Fills `ws.order_buf` with the forest's nodes ordered by decreasing depth
/// (children before parents) — a valid processing order for bottom-up
/// accumulation. Counting sort by depth: nodes are placed in ascending index
/// order within each depth, matching the stable comparison sort this
/// replaced.
fn bottom_up_order_in(forest: &SpanningForest, ws: &mut Workspace) {
    let n = forest.parent.len();
    let max_d = forest.depth.iter().copied().max().unwrap_or(0);
    ws.bucket_buf.clear();
    ws.bucket_buf.resize(max_d + 1, 0);
    for &d in &forest.depth {
        ws.bucket_buf[d] += 1;
    }
    // Deepest depth writes first: offset[d] = #nodes strictly deeper than d.
    let mut acc = 0usize;
    for d in (0..=max_d).rev() {
        let c = ws.bucket_buf[d];
        ws.bucket_buf[d] = acc;
        acc += c;
    }
    ws.order_buf.clear();
    ws.order_buf.resize(n, NodeId(0));
    for v in 0..n {
        let d = forest.depth[v];
        ws.order_buf[ws.bucket_buf[d]] = NodeId(v as u32);
        ws.bucket_buf[d] += 1;
    }
}

/// Computes the paper's `E_odd`: the set of tree edges that lie on an odd
/// number of pairing paths when the `marked` nodes are paired arbitrarily
/// within each tree and joined by tree paths.
///
/// The result is pairing-independent: the tree edge from `v` to its parent is
/// in `E_odd` iff the subtree rooted at `v` contains an odd number of marked
/// nodes.
///
/// # Panics
/// Panics (in debug builds) if any tree of the forest contains an odd number
/// of marked nodes — the callers mark odd-degree nodes of `G\T` restricted to
/// a component, which is always even.
pub fn odd_parity_tree_edges(_g: &Graph, forest: &SpanningForest, marked: &[bool]) -> Vec<EdgeId> {
    let n = forest.parent.len();
    assert_eq!(marked.len(), n, "marked array must cover every node");
    let ws = &mut Workspace::new();
    ws.counts.reset(n);
    for (v, &m) in marked.iter().enumerate() {
        if m {
            ws.counts.set(v, 1);
        }
    }
    odd_parity_tree_edges_from_counts(forest, ws)
}

/// [`odd_parity_tree_edges`] driven by pre-seeded per-node values in
/// `ws.counts` instead of a `marked` boolean array.
///
/// Only the **parity** of the seeds matters: seeding node `v` with any value
/// congruent mod 2 to its markedness gives the same `E_odd`. `SpanT_Euler`
/// exploits this by seeding with raw `G\T` degrees (a node is marked iff its
/// non-tree degree is odd), skipping the intermediate marked array entirely.
///
/// On return `ws.counts` holds the accumulated subtree sums.
pub fn odd_parity_tree_edges_from_counts(
    forest: &SpanningForest,
    ws: &mut Workspace,
) -> Vec<EdgeId> {
    bottom_up_order_in(forest, ws);
    let mut e_odd = Vec::new();
    for i in 0..ws.order_buf.len() {
        let v = ws.order_buf[i];
        if let Some((p, e)) = forest.parent[v.index()] {
            let c = ws.counts.get(v.index());
            if c % 2 == 1 {
                e_odd.push(e);
            }
            ws.counts.add(p.index(), c);
        } else {
            debug_assert!(
                ws.counts.get(v.index()) % 2 == 0,
                "a tree contains an odd number of marked nodes"
            );
        }
    }
    e_odd
}

/// Decomposes every tree of the forest into edge-disjoint paths covering all
/// tree edges. Each path is a [`Walk`] that is a simple path in the tree;
/// paths start at leaves of the (shrinking) forest, so a tree with `L`
/// leaves produces about `⌈L/2⌉` paths.
///
/// Trees with no edges produce nothing.
pub fn decompose_into_paths(g: &Graph, forest: &SpanningForest) -> Vec<Walk> {
    decompose_into_paths_in(g, forest, &mut Workspace::new())
}

/// [`decompose_into_paths`] against a caller-owned [`Workspace`]: the tree
/// adjacency is counting-sorted into flat workspace buffers instead of a
/// fresh `Vec<Vec<_>>` per call.
pub fn decompose_into_paths_in(
    g: &Graph,
    forest: &SpanningForest,
    ws: &mut Workspace,
) -> Vec<Walk> {
    let n = g.num_nodes();
    // Flat tree adjacency: offsets in bucket_buf, pairs in pair_buf. Edges
    // are scanned in `forest.edges` order, so each node's neighbor list
    // matches the push order of the nested adjacency this replaced.
    ws.bucket_buf.clear();
    ws.bucket_buf.resize(n + 1, 0);
    for &e in &forest.edges {
        let (u, v) = g.endpoints(e);
        ws.bucket_buf[u.index() + 1] += 1;
        ws.bucket_buf[v.index() + 1] += 1;
    }
    for i in 0..n {
        ws.bucket_buf[i + 1] += ws.bucket_buf[i];
    }
    ws.bucket_buf2.clear();
    ws.bucket_buf2.extend_from_slice(&ws.bucket_buf[..n]);
    ws.pair_buf.clear();
    ws.pair_buf
        .resize(2 * forest.edges.len(), (NodeId(0), EdgeId(0)));
    for &e in &forest.edges {
        let (u, v) = g.endpoints(e);
        ws.pair_buf[ws.bucket_buf2[u.index()]] = (v, e);
        ws.bucket_buf2[u.index()] += 1;
        ws.pair_buf[ws.bucket_buf2[v.index()]] = (u, e);
        ws.bucket_buf2[v.index()] += 1;
    }
    ws.edge_used.reset(g.num_edges());
    ws.counts.reset(n);
    for v in 0..n {
        ws.counts
            .set(v, (ws.bucket_buf[v + 1] - ws.bucket_buf[v]) as u32);
    }

    let mut remaining = forest.edges.len();
    let mut paths = Vec::new();
    while remaining > 0 {
        // Find a leaf of the remaining forest (degree exactly 1).
        let leaf = (0..n)
            .map(NodeId::new)
            .find(|v| ws.counts.get(v.index()) == 1)
            .expect("a forest with edges has a leaf");
        let mut walk = Walk::singleton(leaf);
        let mut cur = leaf;
        loop {
            let lo = ws.bucket_buf[cur.index()];
            let hi = ws.bucket_buf[cur.index() + 1];
            let next = ws.pair_buf[lo..hi]
                .iter()
                .find(|&&(_, e)| !ws.edge_used.contains(e.index()))
                .copied();
            let Some((w, e)) = next else { break };
            ws.edge_used.insert(e.index());
            ws.counts.set(cur.index(), ws.counts.get(cur.index()) - 1);
            ws.counts.set(w.index(), ws.counts.get(w.index()) - 1);
            remaining -= 1;
            walk.push(g, e);
            cur = w;
        }
        debug_assert!(!walk.is_empty());
        paths.push(walk);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spanning::{spanning_forest, TreeStrategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn forest_of(g: &Graph) -> SpanningForest {
        spanning_forest(g, TreeStrategy::Bfs, &mut rng())
    }

    #[test]
    fn tree_path_on_a_path_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let f = forest_of(&g);
        let p = tree_path(&g, &f, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.len(), 4);
        let w = tree_path_walk(&g, &f, NodeId(4), NodeId(1)).unwrap();
        assert_eq!(w.start(), NodeId(4));
        assert_eq!(w.end(), NodeId(1));
        assert_eq!(w.len(), 3);
        assert!(w.validate(&g).is_ok());
    }

    #[test]
    fn tree_path_same_node_is_singleton() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let f = forest_of(&g);
        let w = tree_path_walk(&g, &f, NodeId(1), NodeId(1)).unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn tree_path_across_components_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let f = forest_of(&g);
        assert!(tree_path(&g, &f, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn parity_edges_on_star() {
        // Star with hub 0 and leaves 1..4; mark leaves 1 and 2.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let f = forest_of(&g);
        let mut marked = vec![false; 5];
        marked[1] = true;
        marked[2] = true;
        let mut e_odd = odd_parity_tree_edges(&g, &f, &marked);
        e_odd.sort_unstable();
        // Path 1-0-2 uses edges (0,1) and (0,2) exactly once each.
        assert_eq!(e_odd, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn parity_edges_match_explicit_pairing_counts() {
        // On random trees, check against brute force: pair marked nodes in
        // index order, count path multiplicity per edge, compare parities.
        let mut r = rng();
        for seed in 0..10u64 {
            let mut r2 = StdRng::seed_from_u64(seed);
            let g = generators::gnm(14, 25, &mut r2);
            let f = spanning_forest(&g, TreeStrategy::RandomKruskal, &mut r);
            // Mark an even number of nodes per tree: take nodes two at a
            // time within each tree.
            let comps = crate::traversal::connected_components(&g);
            let mut marked = vec![false; g.num_nodes()];
            for group in comps.groups() {
                for pair in group.chunks(2) {
                    if pair.len() == 2 {
                        marked[pair[0].index()] = true;
                        marked[pair[1].index()] = true;
                    }
                }
            }
            // Brute force alpha(e) with an arbitrary (index-order) pairing.
            let mut alpha = vec![0usize; g.num_edges()];
            for group in comps.groups() {
                let ms: Vec<NodeId> = group
                    .iter()
                    .copied()
                    .filter(|v| marked[v.index()])
                    .collect();
                for pair in ms.chunks(2) {
                    if pair.len() == 2 {
                        for e in tree_path(&g, &f, pair[0], pair[1]).unwrap() {
                            alpha[e.index()] += 1;
                        }
                    }
                }
            }
            let mut expected: Vec<EdgeId> = f
                .edges
                .iter()
                .copied()
                .filter(|e| alpha[e.index()] % 2 == 1)
                .collect();
            expected.sort_unstable();
            let mut got = odd_parity_tree_edges(&g, &f, &marked);
            got.sort_unstable();
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn path_decomposition_covers_all_tree_edges_exactly_once() {
        let mut r = rng();
        let g = generators::gnm(30, 70, &mut r);
        let f = forest_of(&g);
        let paths = decompose_into_paths(&g, &f);
        let mut covered = vec![0usize; g.num_edges()];
        for p in &paths {
            assert!(p.validate(&g).is_ok());
            assert!(p.is_simple_path(), "forest walks must be simple paths");
            for &e in p.edges() {
                covered[e.index()] += 1;
            }
        }
        for &e in &f.edges {
            assert_eq!(covered[e.index()], 1);
        }
        let total: usize = paths.iter().map(Walk::len).sum();
        assert_eq!(total, f.edges.len());
    }

    #[test]
    fn path_decomposition_of_star_yields_two_edge_paths() {
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]);
        let f = forest_of(&g);
        let paths = decompose_into_paths(&g, &f);
        // 6 leaves -> 3 paths of 2 edges each.
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn path_decomposition_of_edgeless_forest_is_empty() {
        let g = Graph::new(4);
        let f = forest_of(&g);
        assert!(decompose_into_paths(&g, &f).is_empty());
    }
}
