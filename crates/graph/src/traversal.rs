//! Breadth-first and depth-first traversal, connected components.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Nodes reachable from `start`, in BFS order (including `start`).
pub fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let csr = g.csr();
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &(w, _) in csr.incident(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Nodes reachable from `start`, in iterative-DFS preorder.
pub fn dfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let csr = g.csr();
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        // Push in reverse so the first-listed neighbor is visited first.
        for &(w, _) in csr.incident(v).iter().rev() {
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    order
}

/// Component labeling over the full node set: `labels[v]` is the dense id
/// (`0..count`) of `v`'s connected component. Isolated nodes get their own
/// components.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component label per node.
    pub labels: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Groups nodes by component label, in label order.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &c) in self.labels.iter().enumerate() {
            groups[c].push(NodeId::new(i));
        }
        groups
    }

    /// `true` if `u` and `v` are in the same component.
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }
}

/// Computes connected components of `g` over the full node set.
pub fn connected_components(g: &Graph) -> Components {
    let csr = g.csr();
    let mut labels = vec![usize::MAX; g.num_nodes()];
    let mut count = 0;
    let mut stack = Vec::new();
    for v in g.nodes() {
        if labels[v.index()] != usize::MAX {
            continue;
        }
        labels[v.index()] = count;
        stack.push(v);
        while let Some(x) = stack.pop() {
            for &(w, _) in csr.incident(x) {
                if labels[w.index()] == usize::MAX {
                    labels[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// `true` if `g` is connected (graphs with zero or one node count as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() <= 1 || connected_components(g).count == 1
}

/// BFS hop distances from `start`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, start: NodeId) -> Vec<usize> {
    let csr = g.csr();
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[start.index()] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for &(w, _) in csr.incident(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of `v` (greatest hop distance to any node); `None` when
/// some node is unreachable.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    let d = bfs_distances(g, v);
    d.into_iter()
        .try_fold(0usize, |acc, x| (x != usize::MAX).then(|| acc.max(x)))
}

/// Diameter (max eccentricity) of a connected graph; `None` when
/// disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.num_nodes() == 0 {
        return None;
    }
    let mut best = 0usize;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// `true` if all *edges* of `g` live in one component, i.e. the graph is
/// connected once isolated nodes are ignored. An edgeless graph counts as
/// edge-connected.
pub fn is_edge_connected(g: &Graph) -> bool {
    if g.is_empty() {
        return true;
    }
    let comps = connected_components(g);
    let mut edge_comp = usize::MAX;
    for e in g.edges() {
        let (u, _) = g.endpoints(e);
        let c = comps.labels[u.index()];
        if edge_comp == usize::MAX {
            edge_comp = c;
        } else if c != edge_comp {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(
            order,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn dfs_goes_deep_first() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        let order = dfs_order(&g, NodeId(0));
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order[1], NodeId(1));
        assert_eq!(order[2], NodeId(3)); // deep before sibling 2
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn traversal_is_limited_to_component() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(bfs_order(&g, NodeId(0)).len(), 2);
        assert_eq!(dfs_order(&g, NodeId(2)).len(), 2);
    }

    #[test]
    fn components_count_isolated_nodes() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert!(c.same(NodeId(0), NodeId(2)));
        assert!(!c.same(NodeId(0), NodeId(3)));
        let groups = c.groups();
        assert_eq!(groups[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = crate::generators::cycle(8);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[4], 4);
        assert_eq!(d[7], 1);
    }

    #[test]
    fn distances_mark_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(eccentricity(&g, NodeId(0)), None);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn diameters_of_named_graphs() {
        assert_eq!(diameter(&crate::generators::cycle(8)), Some(4));
        assert_eq!(diameter(&crate::generators::path(5)), Some(4));
        assert_eq!(diameter(&crate::generators::complete(6)), Some(1));
        assert_eq!(diameter(&crate::generators::petersen()), Some(2));
        assert_eq!(diameter(&Graph::new(0)), None);
        assert_eq!(diameter(&Graph::new(1)), Some(0));
    }

    #[test]
    fn eccentricity_of_star_hub_vs_leaf() {
        let g = crate::generators::star(6);
        assert_eq!(eccentricity(&g, NodeId(0)), Some(1));
        assert_eq!(eccentricity(&g, NodeId(3)), Some(2));
    }

    #[test]
    fn connectivity_predicates() {
        assert!(is_connected(&path4()));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert!(!is_connected(&g)); // node 2 isolated
        assert!(is_edge_connected(&g)); // but all edges in one component
        let h = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_edge_connected(&h));
        assert!(is_edge_connected(&Graph::new(3)));
    }
}
