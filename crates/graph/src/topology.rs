//! Physical mesh topologies and deterministic k-shortest-path routing.
//!
//! Ring grooming needs no layer-0 model: on a UPSR every circle visits
//! every node, so the physical ring disappears from the math. Mesh
//! grooming does not get that luxury — demands are *routed* over an
//! arbitrary weighted topology first, and only then groomed into
//! wavelengths at nodes with finite hardware ([`NodeCaps`]). This module
//! is the layer-0 substrate: a [`Topology`] couples a [`Graph`] with
//! per-link weights and per-node capacities, and
//! [`Topology::k_shortest_paths`] enumerates candidate routes with **Yen's
//! algorithm**.
//!
//! # Determinism contract
//!
//! Routing must be a pure function of the topology — no RNG, no iteration
//! over hash maps, no dependence on worker count — because the solve
//! surface promises bit-identical plans at any parallelism. Two rules
//! deliver that:
//!
//! * every shortest-path query returns the minimum-length path whose
//!   **node sequence is lexicographically smallest** among equals (the
//!   (length, lex-path) order), computed by a reverse Dijkstra followed by
//!   a greedy lex walk;
//! * routes are identified by their node sequences: parallel links never
//!   create "distinct" routes, and Yen's spur step bans the *node pair*
//!   of a used hop (all parallel links at once), so the route list is
//!   invariant under permutations of the input's edge order.
//!
//! Ties between parallel links of equal weight resolve to the smallest
//! [`EdgeId`] when a route is materialized into link ids.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// Hardware capacities of one grooming node.
///
/// Capacities are *per-wavelength-circle* counts, matching the SADM
/// accounting of the ring model: terminating any amount of traffic of one
/// wavelength at a node occupies one add/drop port there, and passing a
/// wavelength through without terminating occupies one unit of switching
/// capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeCaps {
    /// Wavelengths this node can add/drop (terminate) traffic on.
    pub add_drop_ports: u32,
    /// Wavelengths this node can switch through without terminating.
    pub switch_capacity: u32,
}

impl NodeCaps {
    /// A node with no hardware limits (both counters at `u32::MAX`).
    pub const UNLIMITED: NodeCaps = NodeCaps {
        add_drop_ports: u32::MAX,
        switch_capacity: u32::MAX,
    };

    /// A node terminating on at most `ports` wavelengths and switching at
    /// most `switch` through.
    pub fn new(ports: u32, switch: u32) -> Self {
        NodeCaps {
            add_drop_ports: ports,
            switch_capacity: switch,
        }
    }
}

/// A physical mesh: a weighted multigraph of fiber links plus per-node
/// grooming hardware.
#[derive(Clone, Debug)]
pub struct Topology {
    graph: Graph,
    weights: Vec<u32>,
    caps: Vec<NodeCaps>,
}

/// One candidate route: a loopless path as node sequence, the link ids
/// realizing each hop, and its total weighted length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutePath {
    /// The node sequence, endpoints included.
    pub nodes: Vec<NodeId>,
    /// One link id per hop (`links.len() == nodes.len() - 1`).
    pub links: Vec<EdgeId>,
    /// Total weighted length.
    pub length: u64,
}

impl RoutePath {
    /// Number of hops.
    pub fn num_hops(&self) -> usize {
        self.links.len()
    }
}

impl Topology {
    /// A topology over `graph` with one weight per link and one capacity
    /// record per node.
    ///
    /// # Panics
    /// Panics if the weight or capacity vectors do not match the graph, or
    /// if any link weight is zero (zero-weight links would let the lex
    /// walk cycle). Wire-facing callers validate first via
    /// [`crate::io::parse_topology`], which never panics.
    pub fn new(graph: Graph, weights: Vec<u32>, caps: Vec<NodeCaps>) -> Self {
        assert_eq!(weights.len(), graph.num_edges(), "one weight per link");
        assert_eq!(caps.len(), graph.num_nodes(), "one capacity per node");
        assert!(weights.iter().all(|&w| w >= 1), "link weights must be >= 1");
        Topology {
            graph,
            weights,
            caps,
        }
    }

    /// A topology with unit link weights and unlimited node capacities.
    pub fn uniform(graph: Graph) -> Self {
        let weights = vec![1; graph.num_edges()];
        let caps = vec![NodeCaps::UNLIMITED; graph.num_nodes()];
        Topology::new(graph, weights, caps)
    }

    /// The unidirectional-ring topology on `n` nodes (unit weights,
    /// unlimited capacities): the degenerate mesh on which mesh grooming
    /// must reproduce the UPSR solver exactly.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        Topology::uniform(crate::generators::cycle(n))
    }

    /// The underlying link graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of fiber links.
    pub fn num_links(&self) -> usize {
        self.graph.num_edges()
    }

    /// The weight of link `e`.
    pub fn weight(&self, e: EdgeId) -> u32 {
        self.weights[e.index()]
    }

    /// All link weights, indexed by [`EdgeId`].
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The capacities of node `v`.
    pub fn caps(&self, v: NodeId) -> NodeCaps {
        self.caps[v.index()]
    }

    /// All node capacities, indexed by [`NodeId`].
    pub fn node_caps(&self) -> &[NodeCaps] {
        &self.caps
    }

    /// `true` if every node is unlimited — capacity repair is a no-op.
    pub fn is_uncapacitated(&self) -> bool {
        self.caps.iter().all(|&c| c == NodeCaps::UNLIMITED)
    }

    /// Reverse Dijkstra: distance from every node *to* `t`, skipping
    /// banned nodes and banned node pairs. `u64::MAX` marks unreachable.
    fn dist_to(&self, t: NodeId, banned_node: &[bool], banned_hop: &BannedHops) -> Vec<u64> {
        let csr = self.graph.csr();
        let mut dist = vec![u64::MAX; self.graph.num_nodes()];
        if banned_node[t.index()] {
            return dist;
        }
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[t.index()] = 0;
        heap.push(Reverse((0, t.0)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &(u, e) in csr.incident(NodeId(v)) {
                if banned_node[u.index()] || banned_hop.contains(NodeId(v), u) {
                    continue;
                }
                let nd = d + self.weights[e.index()] as u64;
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    heap.push(Reverse((nd, u.0)));
                }
            }
        }
        dist
    }

    /// The lex walk: from `s`, repeatedly step to the smallest-id neighbor
    /// that stays on a shortest path to the target of `dist`. Yields the
    /// (length, lex-path)-minimal path. Weights are >= 1, so `dist`
    /// strictly decreases and the walk cannot cycle.
    fn lex_walk(
        &self,
        s: NodeId,
        dist: &[u64],
        banned_node: &[bool],
        banned_hop: &BannedHops,
    ) -> Option<RoutePath> {
        if dist[s.index()] == u64::MAX {
            return None;
        }
        let csr = self.graph.csr();
        let length = dist[s.index()];
        let mut nodes = vec![s];
        let mut links = Vec::new();
        let mut cur = s;
        while dist[cur.index()] > 0 {
            let need = dist[cur.index()];
            // The smallest next node on a shortest continuation, then the
            // (weight-matching) smallest link id to it.
            let mut best: Option<(NodeId, EdgeId)> = None;
            for &(u, e) in csr.incident(cur) {
                if banned_node[u.index()]
                    || banned_hop.contains(cur, u)
                    || dist[u.index()] == u64::MAX
                {
                    continue;
                }
                let w = self.weights[e.index()] as u64;
                if dist[u.index()] + w != need {
                    continue;
                }
                match best {
                    Some((bu, be)) if (u, e) >= (bu, be) => {}
                    _ => best = Some((u, e)),
                }
            }
            let (u, e) = best?;
            nodes.push(u);
            links.push(e);
            cur = u;
        }
        Some(RoutePath {
            nodes,
            links,
            length,
        })
    }

    /// The shortest `s -> t` path under the (length, lex-path) order, or
    /// `None` if `t` is unreachable (or `s == t`).
    pub fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<RoutePath> {
        if s == t {
            return None;
        }
        let banned_node = vec![false; self.num_nodes()];
        let banned_hop = BannedHops::default();
        let dist = self.dist_to(t, &banned_node, &banned_hop);
        self.lex_walk(s, &dist, &banned_node, &banned_hop)
    }

    /// Up to `k` loopless shortest `s -> t` paths by **Yen's algorithm**,
    /// in increasing (length, lex-path) order.
    ///
    /// Routes are identified by node sequence — parallel links never
    /// produce duplicate routes — and the whole computation is seed-free,
    /// so the result is a pure function of the topology (see the module
    /// docs for the determinism contract).
    pub fn k_shortest_paths(&self, s: NodeId, t: NodeId, k: usize) -> Vec<RoutePath> {
        if k == 0 || s == t {
            return Vec::new();
        }
        let n = self.num_nodes();
        let mut accepted: Vec<RoutePath> = Vec::new();
        let mut banned_node = vec![false; n];
        let mut banned_hop = BannedHops::default();
        let dist = self.dist_to(t, &banned_node, &banned_hop);
        match self.lex_walk(s, &dist, &banned_node, &banned_hop) {
            Some(first) => accepted.push(first),
            None => return Vec::new(),
        }

        let mut candidates: Vec<RoutePath> = Vec::new();
        while accepted.len() < k {
            let prev = accepted.last().unwrap().clone();
            for i in 0..prev.nodes.len() - 1 {
                let spur = prev.nodes[i];
                let root = &prev.nodes[..=i];
                // Ban the next hop of every accepted path sharing this
                // root — as a node pair, so parallel links are banned
                // together and the route list stays edge-order invariant.
                banned_hop.clear();
                for p in &accepted {
                    if p.nodes.len() > i && p.nodes[..=i] == *root {
                        banned_hop.insert(p.nodes[i], p.nodes[i + 1]);
                    }
                }
                // Ban the root nodes (except the spur) to keep paths
                // loopless.
                for v in &root[..i] {
                    banned_node[v.index()] = true;
                }
                let dist = self.dist_to(t, &banned_node, &banned_hop);
                if let Some(tail) = self.lex_walk(spur, &dist, &banned_node, &banned_hop) {
                    let mut nodes = root[..i].to_vec();
                    nodes.extend_from_slice(&tail.nodes);
                    let mut links = prev.links[..i].to_vec();
                    links.extend_from_slice(&tail.links);
                    let length = prev.links[..i]
                        .iter()
                        .map(|&e| self.weights[e.index()] as u64)
                        .sum::<u64>()
                        + tail.length;
                    let cand = RoutePath {
                        nodes,
                        links,
                        length,
                    };
                    let known = accepted.iter().chain(candidates.iter());
                    if !known.into_iter().any(|p| p.nodes == cand.nodes) {
                        candidates.push(cand);
                    }
                }
                for v in &root[..i] {
                    banned_node[v.index()] = false;
                }
            }
            // Promote the (length, lex-path)-minimal candidate.
            let Some(best) = candidates
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (a.length, &a.nodes).cmp(&(b.length, &b.nodes)))
                .map(|(i, _)| i)
            else {
                break;
            };
            accepted.push(candidates.swap_remove(best));
        }
        accepted
    }
}

/// A small set of banned (undirected) node pairs — the spur step's "remove
/// this hop" device. Linear scan: Yen bans at most one hop per accepted
/// path, so the set stays tiny and order-independent.
#[derive(Default)]
struct BannedHops {
    pairs: Vec<(NodeId, NodeId)>,
}

impl BannedHops {
    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn insert(&mut self, a: NodeId, b: NodeId) {
        let key = Self::key(a, b);
        if !self.pairs.contains(&key) {
            self.pairs.push(key);
        }
    }

    fn contains(&self, a: NodeId, b: NodeId) -> bool {
        self.pairs.contains(&Self::key(a, b))
    }

    fn clear(&mut self) {
        self.pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// FNV-1a digest of a route list's node sequences — the golden pin.
    fn digest(routes: &[RoutePath]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for r in routes {
            eat(r.length);
            eat(r.nodes.len() as u64);
            for v in &r.nodes {
                eat(v.0 as u64 + 1);
            }
        }
        h
    }

    fn weighted(g: Graph, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = (0..g.num_edges()).map(|_| rng.gen_range(1..=4)).collect();
        let caps = vec![NodeCaps::UNLIMITED; g.num_nodes()];
        Topology::new(g, weights, caps)
    }

    #[test]
    fn ring_routes_are_the_two_arcs() {
        let topo = Topology::ring(6);
        let routes = topo.k_shortest_paths(NodeId(0), NodeId(2), 4);
        assert_eq!(routes.len(), 2, "a cycle has exactly two loopless routes");
        assert_eq!(
            routes[0].nodes,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            "short arc first"
        );
        assert_eq!(routes[0].length, 2);
        assert_eq!(routes[1].length, 4);
        assert_eq!(routes[1].nodes.len(), 5);
    }

    #[test]
    fn lex_order_breaks_equal_length_ties() {
        // A 4-cycle: both arcs between opposite corners have length 2; the
        // lex-smaller node sequence must come first.
        let topo = Topology::ring(4);
        let routes = topo.k_shortest_paths(NodeId(0), NodeId(2), 2);
        assert_eq!(routes[0].nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(routes[1].nodes, vec![NodeId(0), NodeId(3), NodeId(2)]);
        assert_eq!(routes[0].length, routes[1].length);
    }

    #[test]
    fn grid_spur_paths_are_loopless_and_ordered() {
        let topo = Topology::uniform(generators::grid(4, 4));
        let routes = topo.k_shortest_paths(NodeId(0), NodeId(15), 8);
        assert_eq!(routes.len(), 8);
        let mut last = (0, Vec::new());
        for r in &routes {
            // Loopless.
            let mut seen = r.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), r.nodes.len(), "route revisits a node");
            // Hops match links and the length adds up.
            assert_eq!(r.links.len(), r.nodes.len() - 1);
            let len: u64 = r.links.iter().map(|&e| topo.weight(e) as u64).sum();
            assert_eq!(len, r.length);
            for (hop, &e) in r.links.iter().enumerate() {
                let (u, v) = topo.graph().endpoints(e);
                let (a, b) = (r.nodes[hop], r.nodes[hop + 1]);
                assert!((u, v) == (a, b) || (u, v) == (b, a));
            }
            // (length, lex) order.
            let key = (r.length, r.nodes.clone());
            assert!(last < key || last.1.is_empty(), "routes out of order");
            last = key;
        }
        // All six shortest 6-hop monotone paths come before any detour.
        assert!(routes[..6].iter().all(|r| r.length == 6));
    }

    #[test]
    fn parallel_links_resolve_to_smallest_id_and_never_duplicate_routes() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1)); // e0
        g.add_edge(NodeId(0), NodeId(1)); // e1 (parallel)
        g.add_edge(NodeId(1), NodeId(2)); // e2
        let topo = Topology::uniform(g);
        let routes = topo.k_shortest_paths(NodeId(0), NodeId(2), 4);
        assert_eq!(routes.len(), 1, "parallel links are one route");
        assert_eq!(routes[0].links, vec![EdgeId(0), EdgeId(2)]);
    }

    #[test]
    fn unreachable_and_degenerate_queries_return_empty() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        let topo = Topology::uniform(g);
        assert!(topo.k_shortest_paths(NodeId(0), NodeId(3), 3).is_empty());
        assert!(topo.k_shortest_paths(NodeId(0), NodeId(0), 3).is_empty());
        assert!(topo.k_shortest_paths(NodeId(0), NodeId(1), 0).is_empty());
        assert!(topo.shortest_path(NodeId(0), NodeId(3)).is_none());
        assert_eq!(
            topo.shortest_path(NodeId(0), NodeId(1)).unwrap().links,
            vec![EdgeId(0)]
        );
    }

    #[test]
    fn golden_digests_on_pinned_topologies() {
        // Pinned gnm and geometric topologies: any change to the routing
        // order — tie-breaks included — trips these digests. The values
        // are the observed outputs of the initial implementation.
        let g = generators::gnm(24, 60, &mut StdRng::seed_from_u64(7));
        let topo = weighted(g, 7);
        let mut routes = Vec::new();
        for (s, t) in [(0u32, 23u32), (3, 17), (11, 5)] {
            routes.extend(topo.k_shortest_paths(NodeId(s), NodeId(t), 5));
        }
        assert_eq!(digest(&routes), GOLDEN_GNM);

        let g = generators::random_geometric(32, 0.35, &mut StdRng::seed_from_u64(9));
        let topo = Topology::uniform(g);
        let mut routes = Vec::new();
        for (s, t) in [(0u32, 31u32), (8, 19)] {
            routes.extend(topo.k_shortest_paths(NodeId(s), NodeId(t), 4));
        }
        assert_eq!(digest(&routes), GOLDEN_GEOMETRIC);
    }

    // Filled from the first run and pinned ever since.
    const GOLDEN_GNM: u64 = 9558364635370350417;
    const GOLDEN_GEOMETRIC: u64 = 16895635278581779677;

    #[test]
    fn routes_identical_across_repeated_queries() {
        let topo = weighted(generators::gnm(20, 50, &mut StdRng::seed_from_u64(3)), 3);
        let a = topo.k_shortest_paths(NodeId(1), NodeId(18), 6);
        let b = topo.k_shortest_paths(NodeId(1), NodeId(18), 6);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}

#[cfg(test)]
mod route_props {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// Routes must be a pure function of the topology, not of the order
    /// edges were inserted: shuffle the edge list, re-add under the
    /// permutation, and the node sequences (and lengths) of every
    /// k-shortest-path query must be unchanged.
    fn shuffled(topo: &Topology, seed: u64) -> Topology {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..topo.num_links()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut g = Graph::new(topo.num_nodes());
        let mut weights = Vec::with_capacity(topo.num_links());
        for &old in &order {
            let e = EdgeId::new(old);
            let (u, v) = topo.graph().endpoints(e);
            g.add_edge(u, v);
            weights.push(topo.weight(e));
        }
        Topology::new(g, weights, topo.node_caps().to_vec())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn routes_invariant_under_edge_order_permutation(
            seed in any::<u64>(),
            shuffle_seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(6..=16);
            let m = rng.gen_range(n..=(3 * n).min(n * (n - 1) / 2));
            let g = generators::gnm(n, m, &mut rng);
            let weights = (0..m).map(|_| rng.gen_range(1..=3)).collect();
            let topo = Topology::new(g, weights, vec![NodeCaps::UNLIMITED; n]);
            let perm = shuffled(&topo, shuffle_seed);
            let s = NodeId(rng.gen_range(0..n as u32));
            let t = NodeId(rng.gen_range(0..n as u32));
            let a = topo.k_shortest_paths(s, t, 4);
            let b = perm.k_shortest_paths(s, t, 4);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.nodes, &y.nodes);
                prop_assert_eq!(x.length, y.length);
            }
        }

        #[test]
        fn shortest_lengths_equivariant_under_node_relabeling(
            seed in any::<u64>(),
            rot in any::<u32>(),
        ) {
            // Lex tie-breaks follow node ids, so the chosen *path* may
            // differ under relabeling — but the length never does.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(6..=14);
            let m = rng.gen_range(n..=(3 * n).min(n * (n - 1) / 2));
            let g = generators::gnm(n, m, &mut rng);
            let weights: Vec<u32> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            let pi = |v: NodeId| NodeId((v.0 + rot % n as u32) % n as u32);
            let mut h = Graph::new(n);
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                h.add_edge(pi(u), pi(v));
            }
            let t1 = Topology::new(g, weights.clone(), vec![NodeCaps::UNLIMITED; n]);
            let t2 = Topology::new(h, weights, vec![NodeCaps::UNLIMITED; n]);
            let s = NodeId(rng.gen_range(0..n as u32));
            let t = NodeId(rng.gen_range(0..n as u32));
            if s == t { return Ok(()); }
            let a = t1.shortest_path(s, t);
            let b = t2.shortest_path(pi(s), pi(t));
            prop_assert_eq!(a.as_ref().map(|p| p.length), b.as_ref().map(|p| p.length));
        }
    }
}
