//! Clique enumeration (Bron–Kerbosch with pivoting).
//!
//! The ICPP'06 paper closes by proposing to partition traffic graphs "into
//! sub-graphs which are cliques or close to cliques": a `q`-clique packs
//! `C(q,2)` edges onto `q` SADMs, the densest possible wavelength. This
//! module provides the clique machinery behind that heuristic: maximal
//! clique enumeration, maximum clique, and the largest clique usable under
//! a grooming factor (`C(q,2) ≤ k`).

use crate::bitset;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Dense bitset adjacency over a fixed node set, supporting edge removal.
///
/// This is the *residual* structure behind iterated clique peeling (the
/// `dense_first` grooming heuristic): build it once from the traffic graph,
/// delete the edges of each extracted clique, and re-run the clique search
/// on the updated bitsets — no per-round subgraph extraction, no re-walking
/// the edge list. The clique enumeration depends only on the adjacency
/// bitsets, so the results are bit-identical to extracting a fresh subgraph
/// of the surviving edges each round.
#[derive(Clone, Debug)]
pub struct DenseAdjacency {
    n: usize,
    words: usize,
    adj: Vec<Vec<u64>>,
}

impl DenseAdjacency {
    /// Builds the adjacency bitsets of a simple graph (64-node words).
    ///
    /// # Panics
    /// Panics if `g` has parallel edges.
    pub fn from_graph(g: &Graph) -> Self {
        assert!(g.is_simple(), "clique enumeration requires a simple graph");
        let n = g.num_nodes();
        let words = bitset::words_for(n).max(1);
        let mut adj = vec![vec![0u64; words]; n];
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            bitset::set(&mut adj[u.index()], v.index());
            bitset::set(&mut adj[v.index()], u.index());
        }
        DenseAdjacency { n, words, adj }
    }

    /// Removes the edge `{u, v}` from the residual (no-op if absent).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        bitset::clear(&mut self.adj[u.index()], v.index());
        bitset::clear(&mut self.adj[v.index()], u.index());
    }

    /// `true` if the residual still contains the edge `{u, v}`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        bitset::test(&self.adj[u.index()], v.index())
    }

    /// All maximal cliques of the residual, each as an ascending node
    /// list; the full list is sorted. See [`maximal_cliques`].
    pub fn maximal_cliques(&self) -> Vec<Vec<NodeId>> {
        let mut ctx = Ctx {
            adj: &self.adj,
            n: self.n,
            words: self.words,
            out: Vec::new(),
        };
        let mut p = vec![0u64; self.words];
        for i in 0..self.n {
            bitset::set(&mut p, i);
        }
        expand(&mut ctx, &mut Vec::new(), p, vec![0u64; self.words]);
        for c in &mut ctx.out {
            c.sort_unstable();
        }
        ctx.out.sort();
        ctx.out
    }

    /// A maximum clique of the residual (ties broken as in
    /// [`maximum_clique`]). Empty residual → empty clique.
    pub fn maximum_clique(&self) -> Vec<NodeId> {
        self.maximal_cliques()
            .into_iter()
            .max_by_key(|c| c.len())
            .unwrap_or_default()
    }
}

struct Ctx<'a> {
    adj: &'a [Vec<u64>],
    n: usize,
    words: usize,
    out: Vec<Vec<NodeId>>,
}

fn expand(ctx: &mut Ctx, r: &mut Vec<NodeId>, p: Vec<u64>, mut x: Vec<u64>) {
    if bitset::count(&p) == 0 && bitset::count(&x) == 0 {
        ctx.out.push(r.clone());
        return;
    }
    // Pivot: vertex of P ∪ X with the most neighbors in P.
    let mut pivot = usize::MAX;
    let mut best = usize::MAX;
    for i in 0..ctx.n {
        if bitset::test(&p, i) || bitset::test(&x, i) {
            let nb = bitset::intersection_count(&p, &ctx.adj[i]);
            let missing = bitset::count(&p) - nb;
            if pivot == usize::MAX || missing < best {
                pivot = i;
                best = missing;
            }
        }
    }
    // Candidates: P minus neighbors of the pivot.
    let mut candidates = Vec::new();
    for i in 0..ctx.n {
        if bitset::test(&p, i) && !bitset::test(&ctx.adj[pivot], i) {
            candidates.push(i);
        }
    }
    let mut p = p;
    for v in candidates {
        let mut p2 = vec![0u64; ctx.words];
        let mut x2 = vec![0u64; ctx.words];
        for w in 0..ctx.words {
            p2[w] = p[w] & ctx.adj[v][w];
            x2[w] = x[w] & ctx.adj[v][w];
        }
        r.push(NodeId::new(v));
        expand(ctx, r, p2, x2);
        r.pop();
        bitset::clear(&mut p, v);
        bitset::set(&mut x, v);
    }
}

/// All maximal cliques of a simple graph, each as an ascending node list.
///
/// Bron–Kerbosch with greedy pivoting; exponential in the worst case but
/// fast on the sparse-to-moderate instances ring planning produces.
///
/// ```
/// use grooming_graph::cliques::maximal_cliques;
/// use grooming_graph::generators;
///
/// // The bowtie has exactly two maximal cliques: its triangles.
/// let g = grooming_graph::graph::Graph::from_edges(
///     5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
/// assert_eq!(maximal_cliques(&g).len(), 2);
/// let _ = generators::petersen(); // triangle-free: 15 edge-cliques
/// ```
///
/// # Panics
/// Panics if `g` has parallel edges.
pub fn maximal_cliques(g: &Graph) -> Vec<Vec<NodeId>> {
    DenseAdjacency::from_graph(g).maximal_cliques()
}

/// A maximum clique (largest cardinality; ties broken lexicographically by
/// the enumeration order). Empty graph → empty clique.
pub fn maximum_clique(g: &Graph) -> Vec<NodeId> {
    maximal_cliques(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// `true` if `nodes` induces a clique in `g`.
pub fn is_clique(g: &Graph, nodes: &[NodeId]) -> bool {
    for (i, &u) in nodes.iter().enumerate() {
        for &v in &nodes[i + 1..] {
            if u == v || !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// The largest clique size `q` whose edge count fits a grooming factor:
/// `C(q,2) ≤ k` (at least 2, since a single edge always fits any `k ≥ 1`).
pub fn max_clique_size_for_k(k: usize) -> usize {
    let mut q = 2usize;
    while (q + 1) * q / 2 <= k {
        q += 1;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_is_its_own_maximal_clique() {
        let g = generators::cycle(3);
        let cs = maximal_cliques(&g);
        assert_eq!(cs, vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
    }

    #[test]
    fn complete_graph_has_one_maximal_clique() {
        let g = generators::complete(6);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].len(), 6);
        assert_eq!(maximum_clique(&g).len(), 6);
    }

    #[test]
    fn cycle_cliques_are_edges() {
        let g = generators::cycle(5);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 5);
        assert!(cs.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn petersen_maximal_cliques_are_its_edges() {
        // Petersen is triangle-free: 15 maximal cliques of size 2.
        let g = generators::petersen();
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 15);
        assert!(cs.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn bowtie_has_two_triangles() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.len() == 3 && is_clique(&g, c)));
    }

    #[test]
    fn every_enumerated_clique_is_maximal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut r = StdRng::seed_from_u64(1);
        let g = generators::gnm(14, 40, &mut r);
        let cs = maximal_cliques(&g);
        for c in &cs {
            assert!(is_clique(&g, c));
            // No vertex extends it.
            for v in g.nodes() {
                if c.contains(&v) {
                    continue;
                }
                let extends = c.iter().all(|&u| g.has_edge(u, v));
                assert!(!extends, "clique {c:?} extended by {v:?}");
            }
        }
        // Every edge is inside some clique.
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(cs.iter().any(|c| c.contains(&u) && c.contains(&v)));
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::new(0);
        // A single empty clique (R = {}) is reported for the empty graph;
        // maximum_clique maps it to the empty list.
        assert!(maximum_clique(&g).is_empty());
        let g = Graph::new(3);
        let cs = maximal_cliques(&g);
        // Three isolated vertices: three maximal 1-cliques.
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn is_clique_rejects_non_cliques() {
        let g = generators::path(4);
        assert!(is_clique(&g, &[NodeId(0), NodeId(1)]));
        assert!(!is_clique(&g, &[NodeId(0), NodeId(2)]));
        assert!(!is_clique(&g, &[NodeId(0), NodeId(0)]));
        assert!(is_clique(&g, &[]));
    }

    #[test]
    fn clique_size_for_grooming_factor() {
        assert_eq!(max_clique_size_for_k(1), 2);
        assert_eq!(max_clique_size_for_k(2), 2);
        assert_eq!(max_clique_size_for_k(3), 3);
        assert_eq!(max_clique_size_for_k(5), 3);
        assert_eq!(max_clique_size_for_k(6), 4);
        assert_eq!(max_clique_size_for_k(10), 5);
        assert_eq!(max_clique_size_for_k(16), 6); // C(6,2)=15 <= 16 < C(7,2)=21
        assert_eq!(max_clique_size_for_k(64), 11); // C(11,2)=55 <= 64 < 66
    }
}
