//! Triangle enumeration and the exact Edge-Partition-into-Triangles (EPT)
//! solver.
//!
//! The paper's NP-hardness proof (Lemma 6, Theorem 7) reduces from EPT —
//! "can `E(G)` be partitioned into `m/3` triangles?" (Holyer 1981) — first
//! to EPT on regular graphs and then to `k`-edge partitioning with `k = 3`,
//! `L = m`. This module provides the exact (exponential-time) EPT solver
//! used to *verify the reduction empirically* on small instances, plus the
//! triangle utilities the gadget construction needs.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// All triangles of a simple graph as node triples `a < b < c`, sorted.
pub fn enumerate_triangles(g: &Graph) -> Vec<[NodeId; 3]> {
    let mut out = Vec::new();
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        // Common neighbors w with b < w ensures each triangle found once.
        for &(w, _) in g.incident(a) {
            if w > b && g.has_edge(b, w) {
                out.push([a, b, w]);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The three edges of the triangle on nodes `{a, b, c}`.
///
/// Returns `None` if some pair is not adjacent.
pub fn triangle_edges(g: &Graph, t: [NodeId; 3]) -> Option<[EdgeId; 3]> {
    Some([
        g.find_edge(t[0], t[1])?,
        g.find_edge(t[1], t[2])?,
        g.find_edge(t[0], t[2])?,
    ])
}

/// `true` if `triples` (as node triples) is an exact partition of `E(g)`
/// into triangles.
pub fn is_triangle_partition(g: &Graph, triples: &[[NodeId; 3]]) -> bool {
    if triples.len() * 3 != g.num_edges() {
        return false;
    }
    let mut covered = vec![false; g.num_edges()];
    for &t in triples {
        let Some(edges) = triangle_edges_distinct(g, t, &covered) else {
            return false;
        };
        for e in edges {
            covered[e.index()] = true;
        }
    }
    covered.into_iter().all(|c| c)
}

/// Finds uncovered edge ids realizing triangle `t` (multigraph-aware: picks
/// distinct, currently uncovered parallel copies).
fn triangle_edges_distinct(g: &Graph, t: [NodeId; 3], covered: &[bool]) -> Option<[EdgeId; 3]> {
    let mut picked: Vec<EdgeId> = Vec::with_capacity(3);
    for (x, y) in [(t[0], t[1]), (t[1], t[2]), (t[0], t[2])] {
        let e = g
            .incident(x)
            .iter()
            .find(|&&(w, e)| w == y && !covered[e.index()] && !picked.contains(&e))
            .map(|&(_, e)| e)?;
        picked.push(e);
    }
    Some([picked[0], picked[1], picked[2]])
}

/// Exact EPT: partitions `E(g)` into triangles if possible.
///
/// Exponential-time backtracking over the lowest-indexed uncovered edge;
/// intended for the small gadget instances of the hardness tests. Returns
/// the triangles as node triples.
pub fn ept_solve(g: &Graph) -> Option<Vec<[NodeId; 3]>> {
    if g.num_edges() % 3 != 0 {
        return None;
    }
    // Every vertex of a triangle-partitionable graph has even degree.
    if g.degrees().iter().any(|&d| d % 2 == 1) {
        return None;
    }
    let mut covered = vec![false; g.num_edges()];
    let mut out = Vec::with_capacity(g.num_edges() / 3);
    if backtrack(g, &mut covered, 0, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn backtrack(g: &Graph, covered: &mut Vec<bool>, from: usize, out: &mut Vec<[NodeId; 3]>) -> bool {
    // Lowest uncovered edge must be in some triangle of uncovered edges.
    let mut e0 = from;
    while e0 < g.num_edges() && covered[e0] {
        e0 += 1;
    }
    if e0 == g.num_edges() {
        return true;
    }
    let (u, v) = g.endpoints(EdgeId::new(e0));
    covered[e0] = true;
    // Candidate apexes: neighbors of u with an uncovered edge to both u, v.
    let candidates: Vec<(NodeId, EdgeId)> = g
        .incident(u)
        .iter()
        .copied()
        .filter(|&(w, e)| w != v && !covered[e.index()])
        .collect();
    let mut tried = Vec::new();
    for (w, e_uw) in candidates {
        if tried.contains(&w) {
            continue; // parallel copies of (u,w) explore identical branches
        }
        tried.push(w);
        let e_vw = g
            .incident(v)
            .iter()
            .find(|&&(x, e)| x == w && !covered[e.index()])
            .map(|&(_, e)| e);
        let Some(e_vw) = e_vw else { continue };
        covered[e_uw.index()] = true;
        covered[e_vw.index()] = true;
        out.push([u, v, w]);
        if backtrack(g, covered, e0 + 1, out) {
            return true;
        }
        out.pop();
        covered[e_uw.index()] = false;
        covered[e_vw.index()] = false;
    }
    covered[e0] = false;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_graph_enumeration() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let ts = enumerate_triangles(&g);
        assert_eq!(ts, vec![[NodeId(0), NodeId(1), NodeId(2)]]);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = generators::complete(4);
        assert_eq!(enumerate_triangles(&g).len(), 4);
    }

    #[test]
    fn k5_has_ten_triangles() {
        let g = generators::complete(5);
        assert_eq!(enumerate_triangles(&g).len(), 10);
    }

    #[test]
    fn triangle_free_graph_has_none() {
        let g = generators::cycle(5);
        assert!(enumerate_triangles(&g).is_empty());
        let g = generators::grid(3, 3);
        assert!(enumerate_triangles(&g).is_empty());
    }

    #[test]
    fn single_triangle_partitions() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sol = ept_solve(&g).unwrap();
        assert!(is_triangle_partition(&g, &sol));
    }

    #[test]
    fn k4_does_not_partition() {
        // K4 has m = 6 divisible by 3 but odd degrees (3 each).
        assert!(ept_solve(&generators::complete(4)).is_none());
    }

    #[test]
    fn two_disjoint_triangles_partition() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let sol = ept_solve(&g).unwrap();
        assert_eq!(sol.len(), 2);
        assert!(is_triangle_partition(&g, &sol));
    }

    #[test]
    fn bowtie_partitions() {
        // Two triangles sharing node 2.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let sol = ept_solve(&g).unwrap();
        assert!(is_triangle_partition(&g, &sol));
    }

    #[test]
    fn octahedron_partitions() {
        // K_{2,2,2} is 4-regular with 12 edges; it partitions into 4 triangles.
        let g = Graph::from_edges(
            6,
            &[
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
            ],
        );
        let sol = ept_solve(&g).unwrap();
        assert_eq!(sol.len(), 4);
        assert!(is_triangle_partition(&g, &sol));
    }

    #[test]
    fn k9_partitions_via_sts() {
        // STS(9) exists, so K9 must partition; the solver should find one.
        let g = generators::complete(9);
        let sol = ept_solve(&g).unwrap();
        assert_eq!(sol.len(), 12);
        assert!(is_triangle_partition(&g, &sol));
    }

    #[test]
    fn sts_triples_validate_as_partition() {
        let n = 9;
        let sts = generators::steiner_triple_system(n).unwrap();
        let g = generators::complete(n);
        let triples: Vec<[NodeId; 3]> = sts
            .iter()
            .map(|t| [NodeId(t[0]), NodeId(t[1]), NodeId(t[2])])
            .collect();
        assert!(is_triangle_partition(&g, &triples));
    }

    #[test]
    fn wrong_cover_rejected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!is_triangle_partition(&g, &[]));
        // Repeated triangle covering the same edges twice:
        let t = [NodeId(0), NodeId(1), NodeId(2)];
        let g2 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 1), (1, 2)]);
        assert!(!is_triangle_partition(&g2, &[t, t]));
    }

    #[test]
    fn triangle_edges_lookup() {
        let g = generators::complete(4);
        let t = [NodeId(0), NodeId(1), NodeId(2)];
        let es = triangle_edges(&g, t).unwrap();
        let mut nodes: Vec<NodeId> = es
            .iter()
            .flat_map(|&e| {
                let (a, b) = g.endpoints(e);
                [a, b]
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes, t.to_vec());
        assert!(triangle_edges(&g, [NodeId(0), NodeId(1), NodeId(1)]).is_none());
    }
}
