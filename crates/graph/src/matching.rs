//! Matchings: greedy maximal and Edmonds' blossom maximum matching.
//!
//! `Regular_Euler` (the paper's §4 algorithm for odd degree `r`) starts by
//! computing a **maximum matching** `M` of the traffic graph and its bound
//! rests on Lemma 8: every `r`-regular graph has a matching of at least
//! `n·r / (2(r+1))` edges. The paper proves Lemma 8 via Vizing edge coloring
//! (see [`crate::coloring`]); here we provide the matching itself through
//! Edmonds' blossom algorithm (O(V³)), which is exact on general graphs —
//! including the non-bipartite traffic graphs the evaluation generates.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// A matching: a set of node-disjoint edges of a parent graph.
#[derive(Clone, Debug)]
pub struct Matching {
    mate: Vec<Option<NodeId>>,
    edges: Vec<EdgeId>,
}

impl Matching {
    /// Builds a matching from a mate array (`mate[v] = Some(w)` iff `{v,w}`
    /// is matched).
    ///
    /// # Panics
    /// Panics if the array is asymmetric or a matched pair is not an edge
    /// of `g`.
    pub fn from_mate_array(g: &Graph, mate: Vec<Option<NodeId>>) -> Self {
        let m = Self::from_mates(g, mate);
        m.validate(g)
            .unwrap_or_else(|e| panic!("invalid mate array: {e}"));
        m
    }

    fn from_mates(g: &Graph, mate: Vec<Option<NodeId>>) -> Self {
        let mut edges = Vec::new();
        for v in g.nodes() {
            if let Some(w) = mate[v.index()] {
                if v < w {
                    let e = g
                        .find_edge(v, w)
                        .expect("matched pair must be joined by an edge");
                    edges.push(e);
                }
            }
        }
        Matching { mate, edges }
    }

    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if no edge is matched.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The partner of `v`, if matched.
    pub fn mate(&self, v: NodeId) -> Option<NodeId> {
        self.mate[v.index()]
    }

    /// `true` if `v` is an endpoint of a matched edge (saturated).
    pub fn is_saturated(&self, v: NodeId) -> bool {
        self.mate[v.index()].is_some()
    }

    /// The matched edge ids (one per pair).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Matched pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| {
                let v = NodeId::new(i);
                m.filter(|&w| v < w).map(|w| (v, w))
            })
            .collect()
    }

    /// Checks that the matching is node-disjoint and consistent with `g`.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.mate.len() != g.num_nodes() {
            return Err("mate array size mismatch".into());
        }
        for v in g.nodes() {
            if let Some(w) = self.mate[v.index()] {
                if self.mate[w.index()] != Some(v) {
                    return Err(format!("asymmetric mates at {v:?} and {w:?}"));
                }
                if v == w {
                    return Err(format!("{v:?} matched to itself"));
                }
                if !g.has_edge(v, w) {
                    return Err(format!("matched pair ({v:?},{w:?}) is not an edge"));
                }
            }
        }
        Ok(())
    }

    /// `true` if no unmatched edge has both endpoints unsaturated
    /// (i.e. the matching is maximal).
    pub fn is_maximal(&self, g: &Graph) -> bool {
        g.edges().all(|e| {
            let (u, v) = g.endpoints(e);
            self.is_saturated(u) || self.is_saturated(v)
        })
    }
}

/// Greedy maximal matching: scan edges in id order, take any edge whose
/// endpoints are both free. Guarantees |greedy| ≥ |maximum| / 2.
pub fn greedy_maximal(g: &Graph) -> Matching {
    let mut mate = vec![None; g.num_nodes()];
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if mate[u.index()].is_none() && mate[v.index()].is_none() {
            mate[u.index()] = Some(v);
            mate[v.index()] = Some(u);
        }
    }
    Matching::from_mates(g, mate)
}

/// Maximum matching on a general graph via Edmonds' blossom algorithm.
///
/// O(V³) with adjacency scanning; exact (returns a maximum-cardinality
/// matching). Parallel edges are harmless (only node adjacency matters).
///
/// ```
/// use grooming_graph::generators;
/// use grooming_graph::matching::maximum_matching;
///
/// let petersen = generators::petersen();
/// let m = maximum_matching(&petersen);
/// assert_eq!(m.len(), 5); // a perfect matching
/// assert!(m.validate(&petersen).is_ok());
/// ```
pub fn maximum_matching(g: &Graph) -> Matching {
    let n = g.num_nodes();
    let mut solver = Blossom {
        g,
        mate: vec![NONE; n],
        parent: vec![NONE; n],
        base: (0..n).collect(),
        queue: Vec::new(),
        used: vec![false; n],
        blossom: vec![false; n],
    };
    // Greedy warm start cuts the number of augmentation phases.
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if solver.mate[u.index()] == NONE && solver.mate[v.index()] == NONE {
            solver.mate[u.index()] = v.index();
            solver.mate[v.index()] = u.index();
        }
    }
    for v in 0..n {
        if solver.mate[v] == NONE {
            solver.try_augment(v);
        }
    }
    let mate = solver
        .mate
        .iter()
        .map(|&m| (m != NONE).then(|| NodeId::new(m)))
        .collect();
    Matching::from_mates(g, mate)
}

const NONE: usize = usize::MAX;

struct Blossom<'a> {
    g: &'a Graph,
    mate: Vec<usize>,
    parent: Vec<usize>,
    base: Vec<usize>,
    queue: Vec<usize>,
    used: Vec<bool>,
    blossom: Vec<bool>,
}

impl Blossom<'_> {
    /// Lowest common ancestor of `a` and `b` in the alternating forest,
    /// in terms of blossom bases.
    fn lca(&self, mut a: usize, mut b: usize) -> usize {
        let n = self.g.num_nodes();
        let mut seen = vec![false; n];
        loop {
            a = self.base[a];
            seen[a] = true;
            if self.mate[a] == NONE {
                break; // reached the root
            }
            a = self.parent[self.mate[a]];
        }
        loop {
            b = self.base[b];
            if seen[b] {
                return b;
            }
            b = self.parent[self.mate[b]];
        }
    }

    /// Marks blossom nodes on the path from `v` down to base `b`, rewiring
    /// parents through `child`.
    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize) {
        while self.base[v] != b {
            self.blossom[self.base[v]] = true;
            self.blossom[self.base[self.mate[v]]] = true;
            self.parent[v] = child;
            child = self.mate[v];
            v = self.parent[self.mate[v]];
        }
    }

    fn try_augment(&mut self, root: usize) -> bool {
        let n = self.g.num_nodes();
        self.parent.iter_mut().for_each(|p| *p = NONE);
        self.used.iter_mut().for_each(|u| *u = false);
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i;
        }
        self.used[root] = true;
        self.queue.clear();
        self.queue.push(root);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let neighbors: Vec<usize> = self
                .g
                .incident(NodeId::new(v))
                .iter()
                .map(|&(w, _)| w.index())
                .collect();
            for w in neighbors {
                if self.base[v] == self.base[w] || self.mate[v] == w {
                    continue;
                }
                if w == root || (self.mate[w] != NONE && self.parent[self.mate[w]] != NONE) {
                    // Found a blossom: contract it.
                    let cur_base = self.lca(v, w);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(v, cur_base, w);
                    self.mark_path(w, cur_base, v);
                    for i in 0..n {
                        if self.blossom[self.base[i]] {
                            self.base[i] = cur_base;
                            if !self.used[i] {
                                self.used[i] = true;
                                self.queue.push(i);
                            }
                        }
                    }
                } else if self.parent[w] == NONE {
                    self.parent[w] = v;
                    if self.mate[w] == NONE {
                        // Augmenting path root..v-w: flip matches along it.
                        let mut w = w;
                        while w != NONE {
                            let pw = self.parent[w];
                            let ppw = self.mate[pw];
                            self.mate[w] = pw;
                            self.mate[pw] = w;
                            w = ppw;
                        }
                        return true;
                    }
                    let mw = self.mate[w];
                    if !self.used[mw] {
                        self.used[mw] = true;
                        self.queue.push(mw);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exponential-time reference: maximum matching by branching on edges.
    fn brute_force_max_matching(g: &Graph) -> usize {
        fn rec(g: &Graph, e: usize, used: &mut [bool]) -> usize {
            if e >= g.num_edges() {
                return 0;
            }
            let skip = rec(g, e + 1, used);
            let (u, v) = g.endpoints(EdgeId::new(e));
            if !used[u.index()] && !used[v.index()] {
                used[u.index()] = true;
                used[v.index()] = true;
                let take = 1 + rec(g, e + 1, used);
                used[u.index()] = false;
                used[v.index()] = false;
                skip.max(take)
            } else {
                skip
            }
        }
        let mut used = vec![false; g.num_nodes()];
        rec(g, 0, &mut used)
    }

    #[test]
    fn greedy_is_maximal_and_valid() {
        let g = generators::petersen();
        let m = greedy_maximal(&g);
        assert!(m.validate(&g).is_ok());
        assert!(m.is_maximal(&g));
        assert!(m.len() >= 3); // >= maximum/2 = 2.5
    }

    #[test]
    fn petersen_maximum_is_perfect() {
        let g = generators::petersen();
        let m = maximum_matching(&g);
        assert!(m.validate(&g).is_ok());
        assert_eq!(m.len(), 5);
        assert!(g.nodes().all(|v| m.is_saturated(v)));
    }

    #[test]
    fn odd_cycle_maximum_is_floor_half() {
        for n in [3usize, 5, 7, 9] {
            let g = generators::cycle(n);
            let m = maximum_matching(&g);
            assert_eq!(m.len(), n / 2, "C_{n}");
        }
    }

    #[test]
    fn complete_graph_maximum() {
        for n in 2..9usize {
            let g = generators::complete(n);
            let m = maximum_matching(&g);
            assert_eq!(m.len(), n / 2, "K_{n}");
            assert!(m.validate(&g).is_ok());
        }
    }

    #[test]
    fn blossom_handles_odd_components() {
        // Two triangles joined by a bridge: maximum matching is 3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn blossom_classic_flower() {
        // A 5-cycle with a pendant: needs blossom contraction to see that
        // the maximum is 3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5)]);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 3);
        assert!(m.is_saturated(NodeId(5)));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..20u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = generators::gnm(9, 14, &mut r);
            let m = maximum_matching(&g);
            assert!(m.validate(&g).is_ok());
            assert_eq!(m.len(), brute_force_max_matching(&g), "seed {seed}");
        }
    }

    #[test]
    fn lemma8_bound_on_regular_graphs() {
        // Lemma 8: an r-regular graph on n nodes has a matching of at least
        // n*r / (2(r+1)) edges.
        for (n, r) in [(36, 7), (36, 15), (20, 3), (14, 5), (36, 8)] {
            for seed in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = generators::random_regular(n, r, &mut rng);
                let m = maximum_matching(&g);
                let bound = (n * r) as f64 / (2.0 * (r as f64 + 1.0));
                assert!(
                    m.len() as f64 >= bound.floor(),
                    "n={n} r={r} seed={seed}: |M|={} < {bound}",
                    m.len()
                );
            }
        }
    }

    #[test]
    fn maximum_at_least_greedy() {
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = generators::gnm(24, 60, &mut r);
            assert!(maximum_matching(&g).len() >= greedy_maximal(&g).len());
        }
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = Graph::new(4);
        let m = maximum_matching(&g);
        assert!(m.is_empty());
        assert!(m.validate(&g).is_ok());
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn pairs_are_ordered_and_consistent() {
        let g = generators::path(4);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 2);
        for (u, v) in m.pairs() {
            assert!(u < v);
            assert_eq!(m.mate(u), Some(v));
            assert_eq!(m.mate(v), Some(u));
        }
    }
}
