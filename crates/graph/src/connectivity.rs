//! Connectivity machinery: bridges, articulation points, and global edge
//! connectivity (Stoer–Wagner).
//!
//! The paper cites Jaeger's theorem — λ(G) ≥ 4 implies a spanning closed
//! trail, hence a skeleton cover of size 1 — as the ancestor of its Lemma 4.
//! [`edge_connectivity`] lets tests and experiments classify instances
//! against that threshold; bridges/articulation points support structural
//! assertions in the test suite.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// All bridge edges of `g` (edges whose removal disconnects their
/// component). Parallel edges are never bridges.
pub fn bridges(g: &Graph) -> Vec<EdgeId> {
    let csr = g.csr();
    let n = g.num_nodes();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    // Iterative DFS; frame = (node, entering edge, neighbor cursor).
    let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = Vec::new();
    for root in g.nodes() {
        if disc[root.index()] != usize::MAX {
            continue;
        }
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        stack.push((root, None, 0));
        while let Some(&mut (v, via, ref mut cursor)) = stack.last_mut() {
            let inc = csr.incident(v);
            if *cursor < inc.len() {
                let (w, e) = inc[*cursor];
                *cursor += 1;
                if Some(e) == via {
                    continue; // don't traverse the entering edge backwards
                }
                if disc[w.index()] == usize::MAX {
                    disc[w.index()] = timer;
                    low[w.index()] = timer;
                    timer += 1;
                    stack.push((w, Some(e), 0));
                } else {
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] > disc[p.index()] {
                        out.push(via.expect("non-root frame has an entering edge"));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// All articulation points (cut vertices) of `g`.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let csr = g.csr();
    let n = g.num_nodes();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut is_cut = vec![false; n];

    let mut stack: Vec<(NodeId, Option<EdgeId>, usize, usize)> = Vec::new(); // + root child count
    for root in g.nodes() {
        if disc[root.index()] != usize::MAX {
            continue;
        }
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        let mut root_children = 0usize;
        stack.push((root, None, 0, 0));
        while let Some(&mut (v, via, ref mut cursor, _)) = stack.last_mut() {
            let inc = csr.incident(v);
            if *cursor < inc.len() {
                let (w, e) = inc[*cursor];
                *cursor += 1;
                if Some(e) == via {
                    continue;
                }
                if disc[w.index()] == usize::MAX {
                    disc[w.index()] = timer;
                    low[w.index()] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, Some(e), 0, 0));
                } else {
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _, _)) = stack.last_mut() {
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if p != root && low[v.index()] >= disc[p.index()] {
                        is_cut[p.index()] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root.index()] = true;
        }
    }
    (0..n as u32)
        .map(NodeId)
        .filter(|v| is_cut[v.index()])
        .collect()
}

/// Global minimum edge cut of `g` via Stoer–Wagner (O(V³)); parallel edges
/// contribute their multiplicity. Returns `0` for disconnected graphs and
/// `None` for graphs with fewer than two nodes (no cut exists).
pub fn global_min_cut(g: &Graph) -> Option<u64> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    if !crate::traversal::is_connected(g) {
        return Some(0);
    }
    let mut w = vec![vec![0u64; n]; n];
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        w[u.index()][v.index()] += 1;
        w[v.index()][u.index()] += 1;
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum-adjacency order over the active (merged) vertices.
        let k = active.len();
        let mut weight_to_a = vec![0u64; k];
        let mut added = vec![false; k];
        let mut prev = 0usize;
        let mut last = 0usize;
        for it in 0..k {
            let mut sel = usize::MAX;
            for i in 0..k {
                if !added[i] && (sel == usize::MAX || weight_to_a[i] > weight_to_a[sel]) {
                    sel = i;
                }
            }
            added[sel] = true;
            if it == k - 1 {
                best = best.min(weight_to_a[sel]);
                prev = last;
                last = sel;
            } else {
                last = sel;
            }
            for i in 0..k {
                if !added[i] {
                    weight_to_a[i] += w[active[sel]][active[i]];
                }
            }
        }
        // Merge `last` into `prev`.
        let (vp, vl) = (active[prev], active[last]);
        for row in w.iter_mut() {
            row[vp] += row[vl];
        }
        let merged_row: Vec<u64> = (0..n).map(|i| w[vp][i] + w[vl][i]).collect();
        w[vp] = merged_row;
        w[vp][vp] = 0;
        active.remove(last);
    }
    Some(best)
}

/// Edge connectivity λ(G): the minimum number of edges whose deletion
/// disconnects `g`. Zero for disconnected or trivially small graphs.
pub fn edge_connectivity(g: &Graph) -> u64 {
    global_min_cut(g).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_edges_are_all_bridges() {
        let g = generators::path(5);
        assert_eq!(bridges(&g).len(), 4);
        assert_eq!(articulation_points(&g).len(), 3); // interior nodes
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = generators::cycle(6);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        assert!(bridges(&g).is_empty());
        let mut h = Graph::new(2);
        h.add_edge(NodeId(0), NodeId(1));
        assert_eq!(bridges(&h).len(), 1);
    }

    #[test]
    fn barbell_bridge_and_cut_vertex() {
        // Two triangles joined by a bridge (2-3).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let b = bridges(&g);
        assert_eq!(b.len(), 1);
        assert_eq!(g.endpoints(b[0]), (NodeId(2), NodeId(3)));
        let cuts = articulation_points(&g);
        assert_eq!(cuts, vec![NodeId(2), NodeId(3)]);
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn cycle_connectivity_is_two() {
        assert_eq!(edge_connectivity(&generators::cycle(8)), 2);
    }

    #[test]
    fn complete_graph_connectivity() {
        for n in 2..8usize {
            assert_eq!(
                edge_connectivity(&generators::complete(n)),
                (n - 1) as u64,
                "K_{n}"
            );
        }
    }

    #[test]
    fn petersen_connectivity_is_three() {
        assert_eq!(edge_connectivity(&generators::petersen()), 3);
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(edge_connectivity(&g), 0);
    }

    #[test]
    fn tiny_graphs_have_no_cut() {
        assert_eq!(global_min_cut(&Graph::new(0)), None);
        assert_eq!(global_min_cut(&Graph::new(1)), None);
    }

    #[test]
    fn multigraph_cut_counts_multiplicity() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        assert_eq!(global_min_cut(&g), Some(2));
    }

    #[test]
    fn jaeger_threshold_on_dense_random_graphs() {
        // Dense G(n,m) graphs typically exceed λ >= 4, the Jaeger
        // sufficient condition for a size-1 skeleton cover.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut r = StdRng::seed_from_u64(5);
        let g = generators::gnm(20, 140, &mut r);
        assert!(edge_connectivity(&g) >= 4);
    }
}
