//! Euler walks on multigraph edge subsets (Hierholzer's algorithm).
//!
//! Both of the paper's algorithms reduce to building Euler circuits/paths of
//! carefully constructed even-degree (sub)graphs:
//!
//! * `SpanT_Euler` builds `G'' = E_odd ∪ (E(G)\E(T))`, in which every node
//!   has even degree, and takes one Euler circuit per component.
//! * `Regular_Euler` Euler-traverses `G` directly (even `r`) or the
//!   virtual-edge-augmented `G_odd` plus even components of `G\M` (odd `r`).
//!
//! All of these operate on *subsets* of a fixed multigraph's edges, so the
//! API here takes `(Graph, EdgeSubset)` pairs and returns [`Walk`]s.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::view::EdgeSubset;
use crate::walk::Walk;

/// Why an Euler walk could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EulerError {
    /// The edge set is empty (no walk to build).
    Empty,
    /// The subset's edges span more than one connected component.
    Disconnected,
    /// More than two nodes have odd degree in the subset.
    TooManyOddNodes(usize),
}

impl std::fmt::Display for EulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EulerError::Empty => write!(f, "edge set is empty"),
            EulerError::Disconnected => write!(f, "edge set is not connected"),
            EulerError::TooManyOddNodes(k) => {
                write!(f, "{k} odd-degree nodes (at most 2 allowed)")
            }
        }
    }
}

impl std::error::Error for EulerError {}

/// Nodes with odd degree in the subset, ascending.
pub fn odd_degree_nodes(g: &Graph, subset: &EdgeSubset) -> Vec<NodeId> {
    let mut deg = vec![0usize; g.num_nodes()];
    for &e in subset.edges() {
        let (u, v) = g.endpoints(e);
        deg[u.index()] += 1;
        deg[v.index()] += 1;
    }
    (0..g.num_nodes() as u32)
        .map(NodeId)
        .filter(|v| deg[v.index()] % 2 == 1)
        .collect()
}

/// `true` if the subset admits an Euler circuit: nonempty, edge-connected,
/// all degrees even.
pub fn has_euler_circuit(g: &Graph, subset: &EdgeSubset) -> bool {
    !subset.is_empty()
        && subset.edge_components(g).len() == 1
        && odd_degree_nodes(g, subset).is_empty()
}

/// `true` if the subset admits an Euler walk (circuit or open path).
pub fn has_euler_walk(g: &Graph, subset: &EdgeSubset) -> bool {
    !subset.is_empty()
        && subset.edge_components(g).len() == 1
        && odd_degree_nodes(g, subset).len() <= 2
}

/// Builds an Euler walk of the whole subset.
///
/// If exactly two nodes have odd degree the walk runs between them; if none
/// do, it is a circuit starting at the lowest-indexed touched node (or at
/// `prefer_start` if that node is touched).
pub fn euler_walk(
    g: &Graph,
    subset: &EdgeSubset,
    prefer_start: Option<NodeId>,
) -> Result<Walk, EulerError> {
    if subset.is_empty() {
        return Err(EulerError::Empty);
    }
    if subset.edge_components(g).len() != 1 {
        return Err(EulerError::Disconnected);
    }
    let odd = odd_degree_nodes(g, subset);
    let start = match odd.len() {
        0 => prefer_start
            .filter(|&v| subset.degree(g, v) > 0)
            .unwrap_or_else(|| {
                let (u, _) = g.endpoints(subset.edges()[0]);
                u
            }),
        2 => match prefer_start {
            Some(v) if odd.contains(&v) => v,
            _ => odd[0],
        },
        k => return Err(EulerError::TooManyOddNodes(k)),
    };
    Ok(hierholzer(g, subset, start))
}

/// Builds one Euler walk per edge component of the subset. Every component
/// must have at most two odd-degree nodes.
pub fn component_euler_walks(g: &Graph, subset: &EdgeSubset) -> Result<Vec<Walk>, EulerError> {
    let comps = subset.edge_components(g);
    let mut walks = Vec::with_capacity(comps.len());
    for comp in comps {
        let sub = EdgeSubset::from_edges(g, comp);
        walks.push(euler_walk(g, &sub, None)?);
    }
    Ok(walks)
}

/// Decomposes the subset into the minimum number of edge-disjoint trails
/// (walks without repeated edges): one trail per Eulerian component and
/// `q` trails for a component with `2q > 2` odd-degree nodes.
///
/// This is the workhorse of `Regular_Euler`'s odd-`r` case: the paper pairs
/// surplus odd-degree nodes with *virtual edges*, builds one Euler path, and
/// deletes the virtual edges; each deletion splits the path. We realize the
/// same construction on a scratch multigraph and translate the resulting
/// segments back to parent edge ids.
pub fn trail_decomposition(g: &Graph, subset: &EdgeSubset) -> Vec<Walk> {
    let mut trails = Vec::new();
    for comp in subset.edge_components(g) {
        let comp_subset = EdgeSubset::from_edges(g, comp.iter().copied());
        let odd = odd_degree_nodes(g, &comp_subset);
        if odd.len() <= 2 {
            trails.push(euler_walk(g, &comp_subset, None).expect("component is traversable"));
            continue;
        }
        // Scratch multigraph: the component's edges plus virtual edges
        // pairing all odd nodes except odd[0], odd[1].
        let mut scratch = Graph::new(g.num_nodes());
        let mut origin: Vec<Option<EdgeId>> = Vec::with_capacity(comp.len() + odd.len() / 2);
        for &e in &comp {
            let (u, v) = g.endpoints(e);
            scratch.add_edge(u, v);
            origin.push(Some(e));
        }
        for pair in odd[2..].chunks(2) {
            scratch.add_edge(pair[0], pair[1]);
            origin.push(None);
        }
        let full = EdgeSubset::full(&scratch);
        let walk = euler_walk(&scratch, &full, Some(odd[0]))
            .expect("augmented component has exactly two odd nodes");
        // Split the walk at virtual edges.
        let nodes = walk.nodes();
        let mut seg = Walk::singleton(nodes[0]);
        for (i, &e) in walk.edges().iter().enumerate() {
            match origin[e.index()] {
                Some(orig) => seg.push(g, orig),
                None => {
                    if !seg.is_empty() {
                        trails.push(std::mem::replace(&mut seg, Walk::singleton(nodes[i + 1])));
                    } else {
                        seg = Walk::singleton(nodes[i + 1]);
                    }
                }
            }
        }
        if !seg.is_empty() {
            trails.push(seg);
        }
    }
    trails
}

/// Iterative Hierholzer. Precondition: subset is edge-connected, `start` is
/// touched, and the degree parity admits a walk from `start`.
fn hierholzer(g: &Graph, subset: &EdgeSubset, start: NodeId) -> Walk {
    let n = g.num_nodes();
    let mut used = vec![false; g.num_edges()];
    let mut cursor = vec![0usize; n];
    // Stack holds (node, edge that led here).
    let mut stack: Vec<(NodeId, Option<EdgeId>)> = vec![(start, None)];
    let mut out_nodes: Vec<NodeId> = Vec::with_capacity(subset.len() + 1);
    let mut out_edges: Vec<EdgeId> = Vec::with_capacity(subset.len());

    while let Some(&(v, via)) = stack.last() {
        let inc = g.incident(v);
        let mut advanced = false;
        while cursor[v.index()] < inc.len() {
            let (w, e) = inc[cursor[v.index()]];
            cursor[v.index()] += 1;
            if subset.contains(e) && !used[e.index()] {
                used[e.index()] = true;
                stack.push((w, Some(e)));
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
            out_nodes.push(v);
            if let Some(e) = via {
                out_edges.push(e);
            }
        }
    }
    out_nodes.reverse();
    out_edges.reverse();
    debug_assert_eq!(out_edges.len(), subset.len(), "walk must use every edge");
    Walk::from_parts(g, out_nodes, out_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full(g: &Graph) -> EdgeSubset {
        EdgeSubset::full(g)
    }

    #[test]
    fn triangle_has_circuit() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = full(&g);
        assert!(has_euler_circuit(&g, &s));
        let w = euler_walk(&g, &s, None).unwrap();
        assert!(w.is_closed());
        assert_eq!(w.len(), 3);
        assert!(w.validate(&g).is_ok());
    }

    #[test]
    fn path_graph_has_open_walk_between_odd_nodes() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = full(&g);
        assert!(!has_euler_circuit(&g, &s));
        assert!(has_euler_walk(&g, &s));
        let w = euler_walk(&g, &s, None).unwrap();
        assert_eq!(w.len(), 3);
        let ends = [w.start(), w.end()];
        assert!(ends.contains(&NodeId(0)) && ends.contains(&NodeId(3)));
    }

    #[test]
    fn prefer_start_is_honored_for_circuits() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let w = euler_walk(&g, &full(&g), Some(NodeId(2))).unwrap();
        assert_eq!(w.start(), NodeId(2));
        assert_eq!(w.end(), NodeId(2));
    }

    #[test]
    fn konigsberg_has_no_walk() {
        // The classic: 4 nodes all of odd degree (multigraph).
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let s = full(&g);
        assert_eq!(odd_degree_nodes(&g, &s).len(), 4);
        assert_eq!(
            euler_walk(&g, &s, None),
            Err(EulerError::TooManyOddNodes(4))
        );
    }

    #[test]
    fn disconnected_subset_rejected_but_components_work() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = full(&g);
        assert_eq!(euler_walk(&g, &s, None), Err(EulerError::Disconnected));
        let walks = component_euler_walks(&g, &s).unwrap();
        assert_eq!(walks.len(), 2);
        for w in &walks {
            assert!(w.is_closed());
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn empty_subset_is_an_error() {
        let g = Graph::new(3);
        let s = EdgeSubset::from_edges(&g, []);
        assert_eq!(euler_walk(&g, &s, None), Err(EulerError::Empty));
        assert!(component_euler_walks(&g, &s).unwrap().is_empty());
    }

    #[test]
    fn circuit_on_multigraph_with_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let w = euler_walk(&g, &full(&g), None).unwrap();
        assert!(w.is_closed());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn walk_on_subset_only_uses_subset_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let s = EdgeSubset::from_edges(&g, [EdgeId(0), EdgeId(1), EdgeId(2)]);
        let w = euler_walk(&g, &s, None).unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.edges().contains(&EdgeId(3)));
    }

    #[test]
    fn trail_decomposition_matches_odd_node_count() {
        // K4 has 4 odd nodes -> 2 trails; C5 -> 1 trail; path -> 1 trail.
        let k4 = generators::complete(4);
        let trails = trail_decomposition(&k4, &full(&k4));
        assert_eq!(trails.len(), 2);
        let covered: usize = trails.iter().map(Walk::len).sum();
        assert_eq!(covered, 6);
        for t in &trails {
            assert!(t.validate(&k4).is_ok());
        }

        let c5 = generators::cycle(5);
        assert_eq!(trail_decomposition(&c5, &full(&c5)).len(), 1);
        let p4 = generators::path(4);
        assert_eq!(trail_decomposition(&p4, &full(&p4)).len(), 1);
    }

    #[test]
    fn trail_decomposition_covers_disconnected_subsets() {
        // Two K4s: 2 trails each.
        let mut g = Graph::new(8);
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    g.add_edge(NodeId(base + a), NodeId(base + b));
                }
            }
        }
        let trails = trail_decomposition(&g, &full(&g));
        assert_eq!(trails.len(), 4);
        let mut covered = vec![false; g.num_edges()];
        for t in &trails {
            assert!(t.validate(&g).is_ok());
            for &e in t.edges() {
                assert!(!covered[e.index()]);
                covered[e.index()] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn trail_decomposition_on_star_gives_half_leaves() {
        // K_{1,6}: 6 odd leaves + even hub -> wait, hub degree 6 (even),
        // leaves odd: 6 odd nodes -> 3 trails.
        let g = generators::star(7);
        let trails = trail_decomposition(&g, &full(&g));
        assert_eq!(trails.len(), 3);
        assert!(trails.iter().all(|t| t.len() == 2));
    }

    #[test]
    fn random_even_graphs_always_get_component_circuits() {
        // Build random graphs, then keep doubling edges to force even
        // degrees: union of two copies of each edge makes all degrees even.
        for seed in 0..8u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let base = generators::gnm(12, 20, &mut r);
            let mut g = Graph::new(12);
            for e in base.edges() {
                let (u, v) = base.endpoints(e);
                g.add_edge(u, v);
                g.add_edge(u, v);
            }
            let s = full(&g);
            let walks = component_euler_walks(&g, &s).unwrap();
            let total: usize = walks.iter().map(Walk::len).sum();
            assert_eq!(total, g.num_edges());
            for w in &walks {
                assert!(w.is_closed());
                assert!(w.validate(&g).is_ok());
            }
        }
    }
}
