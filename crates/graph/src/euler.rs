//! Euler walks on multigraph edge subsets (Hierholzer's algorithm).
//!
//! Both of the paper's algorithms reduce to building Euler circuits/paths of
//! carefully constructed even-degree (sub)graphs:
//!
//! * `SpanT_Euler` builds `G'' = E_odd ∪ (E(G)\E(T))`, in which every node
//!   has even degree, and takes one Euler circuit per component.
//! * `Regular_Euler` Euler-traverses `G` directly (even `r`) or the
//!   virtual-edge-augmented `G_odd` plus even components of `G\M` (odd `r`).
//!
//! All of these operate on *subsets* of a fixed multigraph's edges, so the
//! API here takes `(Graph, EdgeSubset)` pairs and returns [`Walk`]s.
//!
//! The walk builders come in two flavors: plain entry points with the
//! historical signatures, and `_in`-suffixed variants that borrow a
//! [`Workspace`] so repeated calls (thousands per portfolio sweep) reuse the
//! visited/used/cursor scratch instead of allocating it per walk. The plain
//! entry points simply allocate a fresh workspace per call — long-running
//! pipelines should own a [`Workspace`] and use the `_in` variants.
//! Traversals run on the graph's
//! cached CSR snapshot ([`Graph::csr`]); per-node incidence order is
//! identical to the nested adjacency, so outputs are unchanged.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::view::EdgeSubset;
use crate::walk::Walk;
use crate::workspace::{StampSet, StampedCounts, Workspace};

/// Why an Euler walk could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EulerError {
    /// The edge set is empty (no walk to build).
    Empty,
    /// The subset's edges span more than one connected component.
    Disconnected,
    /// More than two nodes have odd degree in the subset.
    TooManyOddNodes(usize),
}

impl std::fmt::Display for EulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EulerError::Empty => write!(f, "edge set is empty"),
            EulerError::Disconnected => write!(f, "edge set is not connected"),
            EulerError::TooManyOddNodes(k) => {
                write!(f, "{k} odd-degree nodes (at most 2 allowed)")
            }
        }
    }
}

impl std::error::Error for EulerError {}

/// Nodes with odd degree in the subset, ascending.
pub fn odd_degree_nodes(g: &Graph, subset: &EdgeSubset) -> Vec<NodeId> {
    let mut deg = vec![0usize; g.num_nodes()];
    for &e in subset.edges() {
        let (u, v) = g.endpoints(e);
        deg[u.index()] += 1;
        deg[v.index()] += 1;
    }
    (0..g.num_nodes() as u32)
        .map(NodeId)
        .filter(|v| deg[v.index()] % 2 == 1)
        .collect()
}

/// `true` if the subset admits an Euler circuit: nonempty, edge-connected,
/// all degrees even.
pub fn has_euler_circuit(g: &Graph, subset: &EdgeSubset) -> bool {
    !subset.is_empty()
        && subset.edge_components(g).len() == 1
        && odd_degree_nodes(g, subset).is_empty()
}

/// `true` if the subset admits an Euler walk (circuit or open path).
pub fn has_euler_walk(g: &Graph, subset: &EdgeSubset) -> bool {
    !subset.is_empty()
        && subset.edge_components(g).len() == 1
        && odd_degree_nodes(g, subset).len() <= 2
}

/// Per-component statistics gathered in one labeling pass: enough to pick
/// each component's walk start without materializing per-component subsets.
#[derive(Default)]
struct CompStats {
    /// Smallest edge id in the component (`u32::MAX` sentinel while open).
    min_edge: Vec<u32>,
    /// Number of subset edges in the component.
    edge_count: Vec<u32>,
    /// Number of odd-degree nodes in the component.
    odd_count: Vec<u32>,
    /// Smallest odd-degree node index (`u32::MAX` if none).
    min_odd: Vec<u32>,
}

/// Labels the subset's edge components into `ws.comp` (`cid + 1`; `0` =
/// untouched) and subset degrees into `ws.counts`. Component ids follow the
/// order of first appearance in `subset.edges()` — the same order
/// [`EdgeSubset::edge_components`] emits.
fn label_components(g: &Graph, subset: &EdgeSubset, ws: &mut Workspace) -> CompStats {
    let csr = g.csr();
    let n = g.num_nodes();
    ws.counts.reset(n);
    for &e in subset.edges() {
        let (u, v) = g.endpoints(e);
        ws.counts.add(u.index(), 1);
        ws.counts.add(v.index(), 1);
    }
    ws.comp.reset(n);
    let mut stats = CompStats::default();
    for &start_e in subset.edges() {
        let (root, _) = g.endpoints(start_e);
        if ws.comp.get(root.index()) != 0 {
            continue;
        }
        let cid = stats.min_edge.len() as u32;
        stats.min_edge.push(u32::MAX);
        stats.edge_count.push(0);
        stats.odd_count.push(0);
        stats.min_odd.push(u32::MAX);
        ws.comp.set(root.index(), cid + 1);
        ws.node_stack.clear();
        ws.node_stack.push(root);
        while let Some(v) = ws.node_stack.pop() {
            for &(w, e) in csr.incident(v) {
                if subset.contains(e) && ws.comp.get(w.index()) == 0 {
                    ws.comp.set(w.index(), cid + 1);
                    ws.node_stack.push(w);
                }
            }
        }
    }
    for &e in subset.edges() {
        let (u, _) = g.endpoints(e);
        let cid = (ws.comp.get(u.index()) - 1) as usize;
        stats.edge_count[cid] += 1;
        stats.min_edge[cid] = stats.min_edge[cid].min(e.index() as u32);
    }
    for v in 0..n {
        if ws.counts.get(v) % 2 == 1 {
            let cid = (ws.comp.get(v) - 1) as usize;
            stats.odd_count[cid] += 1;
            stats.min_odd[cid] = stats.min_odd[cid].min(v as u32);
        }
    }
    stats
}

/// Builds an Euler walk of the whole subset.
///
/// If exactly two nodes have odd degree the walk runs between them; if none
/// do, it is a circuit starting at the lowest-indexed touched node (or at
/// `prefer_start` if that node is touched).
pub fn euler_walk(
    g: &Graph,
    subset: &EdgeSubset,
    prefer_start: Option<NodeId>,
) -> Result<Walk, EulerError> {
    euler_walk_in(g, subset, prefer_start, &mut Workspace::new())
}

/// [`euler_walk`] against a caller-owned [`Workspace`].
pub fn euler_walk_in(
    g: &Graph,
    subset: &EdgeSubset,
    prefer_start: Option<NodeId>,
    ws: &mut Workspace,
) -> Result<Walk, EulerError> {
    if subset.is_empty() {
        return Err(EulerError::Empty);
    }
    let stats = label_components(g, subset, ws);
    if stats.min_edge.len() != 1 {
        return Err(EulerError::Disconnected);
    }
    let start = match stats.odd_count[0] {
        0 => prefer_start
            .filter(|&v| ws.counts.get(v.index()) > 0)
            .unwrap_or_else(|| {
                let (u, _) = g.endpoints(subset.edges()[0]);
                u
            }),
        2 => match prefer_start {
            Some(v) if ws.counts.get(v.index()) % 2 == 1 => v,
            _ => NodeId(stats.min_odd[0]),
        },
        k => return Err(EulerError::TooManyOddNodes(k as usize)),
    };
    Ok(hierholzer_in(g, subset, start, subset.len(), ws))
}

/// Builds one Euler walk per edge component of the subset. Every component
/// must have at most two odd-degree nodes.
pub fn component_euler_walks(g: &Graph, subset: &EdgeSubset) -> Result<Vec<Walk>, EulerError> {
    component_euler_walks_in(g, subset, &mut Workspace::new())
}

/// [`component_euler_walks`] against a caller-owned [`Workspace`]: one
/// labeling pass picks every component's start node, so no per-component
/// subsets are materialized.
pub fn component_euler_walks_in(
    g: &Graph,
    subset: &EdgeSubset,
    ws: &mut Workspace,
) -> Result<Vec<Walk>, EulerError> {
    let stats = label_components(g, subset, ws);
    let mut walks = Vec::with_capacity(stats.min_edge.len());
    for cid in 0..stats.min_edge.len() {
        let start = match stats.odd_count[cid] {
            // A circuit starts where the component's smallest edge does —
            // the start `euler_walk` picked when handed the ascending
            // per-component edge list.
            0 => g.endpoints(EdgeId(stats.min_edge[cid])).0,
            2 => NodeId(stats.min_odd[cid]),
            k => return Err(EulerError::TooManyOddNodes(k as usize)),
        };
        // Hierholzer from a node of component `cid` can only reach that
        // component's edges, so the full subset works as the edge filter.
        walks.push(hierholzer_in(
            g,
            subset,
            start,
            stats.edge_count[cid] as usize,
            ws,
        ));
    }
    Ok(walks)
}

/// Decomposes the subset into the minimum number of edge-disjoint trails
/// (walks without repeated edges): one trail per Eulerian component and
/// `q` trails for a component with `2q > 2` odd-degree nodes.
///
/// This is the workhorse of `Regular_Euler`'s odd-`r` case: the paper pairs
/// surplus odd-degree nodes with *virtual edges*, builds one Euler path, and
/// deletes the virtual edges; each deletion splits the path. We realize the
/// same construction on a scratch multigraph and translate the resulting
/// segments back to parent edge ids.
pub fn trail_decomposition(g: &Graph, subset: &EdgeSubset) -> Vec<Walk> {
    trail_decomposition_in(g, subset, &mut Workspace::new())
}

/// [`trail_decomposition`] against a caller-owned [`Workspace`].
pub fn trail_decomposition_in(g: &Graph, subset: &EdgeSubset, ws: &mut Workspace) -> Vec<Walk> {
    let stats = label_components(g, subset, ws);
    let mut trails = Vec::new();
    for cid in 0..stats.min_edge.len() {
        let odd = stats.odd_count[cid] as usize;
        if odd <= 2 {
            let start = if odd == 0 {
                g.endpoints(EdgeId(stats.min_edge[cid])).0
            } else {
                NodeId(stats.min_odd[cid])
            };
            trails.push(hierholzer_in(
                g,
                subset,
                start,
                stats.edge_count[cid] as usize,
                ws,
            ));
            continue;
        }
        // Component edges ascending (the order the per-component subset
        // used to be built in) and odd nodes ascending.
        let label = cid as u32 + 1;
        ws.edge_buf.clear();
        for &e in subset.edges() {
            let (u, _) = g.endpoints(e);
            if ws.comp.get(u.index()) == label {
                ws.edge_buf.push(e);
            }
        }
        ws.edge_buf.sort_unstable();
        let mut odd_nodes: Vec<NodeId> = Vec::with_capacity(odd);
        for v in 0..g.num_nodes() {
            if ws.counts.get(v) % 2 == 1 && ws.comp.get(v) == label {
                odd_nodes.push(NodeId(v as u32));
            }
        }
        // Scratch multigraph: the component's edges plus virtual edges
        // pairing all odd nodes except odd_nodes[0], odd_nodes[1]. Rather
        // than constructing a whole `Graph` (a heap-allocated adjacency
        // list per node), lay the scratch adjacency out as a CSR directly
        // in workspace buffers: scanning the scratch edges in id order
        // fills each node's range in exactly the per-node order a nested
        // adjacency (and hence `Csr::build`) would produce.
        let n = g.num_nodes();
        let real_m = ws.edge_buf.len();
        let scratch_m = real_m + (odd_nodes.len() - 2) / 2;
        let mut origin: Vec<Option<EdgeId>> = Vec::with_capacity(scratch_m);
        for &e in &ws.edge_buf {
            origin.push(Some(e));
        }
        origin.resize(scratch_m, None);
        let endpoint = |scratch_e: usize| -> (NodeId, NodeId) {
            match origin[scratch_e] {
                Some(e) => g.endpoints(e),
                None => {
                    let j = 2 + 2 * (scratch_e - real_m);
                    (odd_nodes[j], odd_nodes[j + 1])
                }
            }
        };
        ws.bucket_buf.clear();
        ws.bucket_buf.resize(n + 1, 0);
        for se in 0..scratch_m {
            let (u, v) = endpoint(se);
            ws.bucket_buf[u.index() + 1] += 1;
            ws.bucket_buf[v.index() + 1] += 1;
        }
        for i in 0..n {
            ws.bucket_buf[i + 1] += ws.bucket_buf[i];
        }
        ws.bucket_buf2.clear();
        ws.bucket_buf2.extend_from_slice(&ws.bucket_buf[..n]);
        ws.pair_buf.clear();
        ws.pair_buf.resize(2 * scratch_m, (NodeId(0), EdgeId(0)));
        for se in 0..scratch_m {
            let (u, v) = endpoint(se);
            let id = EdgeId(se as u32);
            ws.pair_buf[ws.bucket_buf2[u.index()]] = (v, id);
            ws.bucket_buf2[u.index()] += 1;
            ws.pair_buf[ws.bucket_buf2[v.index()]] = (u, id);
            ws.bucket_buf2[v.index()] += 1;
        }
        // The augmented component has exactly two odd nodes and is
        // connected, so a single Hierholzer from odd_nodes[0] covers it.
        // The flat walker only touches edge_used/cursor/walk_stack, leaving
        // ws.comp and ws.counts intact for the remaining components.
        let (nodes, edges) = hierholzer_flat(
            &ws.bucket_buf,
            &ws.pair_buf,
            scratch_m,
            odd_nodes[0],
            &mut ws.edge_used,
            &mut ws.cursor,
            &mut ws.walk_stack,
        );
        // Split the walk at virtual edges.
        let mut seg = Walk::singleton(nodes[0]);
        for (i, &e) in edges.iter().enumerate() {
            match origin[e.index()] {
                Some(orig) => seg.push(g, orig),
                None => {
                    if !seg.is_empty() {
                        trails.push(std::mem::replace(&mut seg, Walk::singleton(nodes[i + 1])));
                    } else {
                        seg = Walk::singleton(nodes[i + 1]);
                    }
                }
            }
        }
        if !seg.is_empty() {
            trails.push(seg);
        }
    }
    trails
}

/// Hierholzer over a flat scratch CSR (`offsets` of length `n + 1`,
/// `neighbors` holding `2 * scratch_m` `(neighbor, scratch edge)` pairs).
/// Preconditions as [`hierholzer_in`], with every scratch edge in the walk's
/// component. Returns the walk as raw node/edge sequences (the scratch edge
/// ids are meaningless outside the caller).
#[allow(clippy::too_many_arguments)]
fn hierholzer_flat(
    offsets: &[usize],
    neighbors: &[(NodeId, EdgeId)],
    scratch_m: usize,
    start: NodeId,
    edge_used: &mut StampSet,
    cursor: &mut StampedCounts,
    walk_stack: &mut Vec<(NodeId, Option<EdgeId>)>,
) -> (Vec<NodeId>, Vec<EdgeId>) {
    edge_used.reset(scratch_m);
    cursor.reset(offsets.len() - 1);
    walk_stack.clear();
    walk_stack.push((start, None));
    let mut out_nodes: Vec<NodeId> = Vec::with_capacity(scratch_m + 1);
    let mut out_edges: Vec<EdgeId> = Vec::with_capacity(scratch_m);

    while let Some(&(v, via)) = walk_stack.last() {
        let inc = &neighbors[offsets[v.index()]..offsets[v.index() + 1]];
        let mut cur = cursor.get(v.index()) as usize;
        let mut advanced = false;
        while cur < inc.len() {
            let (w, e) = inc[cur];
            cur += 1;
            if edge_used.insert(e.index()) {
                walk_stack.push((w, Some(e)));
                advanced = true;
                break;
            }
        }
        cursor.set(v.index(), cur as u32);
        if !advanced {
            walk_stack.pop();
            out_nodes.push(v);
            if let Some(e) = via {
                out_edges.push(e);
            }
        }
    }
    out_nodes.reverse();
    out_edges.reverse();
    debug_assert_eq!(out_edges.len(), scratch_m, "walk must use every edge");
    (out_nodes, out_edges)
}

/// Iterative Hierholzer against workspace scratch. Preconditions: `start`'s
/// component contains exactly `expected` subset edges, and the degree parity
/// admits a walk from `start`.
fn hierholzer_in(
    g: &Graph,
    subset: &EdgeSubset,
    start: NodeId,
    expected: usize,
    ws: &mut Workspace,
) -> Walk {
    let csr = g.csr();
    ws.edge_used.reset(g.num_edges());
    ws.cursor.reset(g.num_nodes());
    ws.walk_stack.clear();
    ws.walk_stack.push((start, None));
    let mut out_nodes: Vec<NodeId> = Vec::with_capacity(expected + 1);
    let mut out_edges: Vec<EdgeId> = Vec::with_capacity(expected);

    while let Some(&(v, via)) = ws.walk_stack.last() {
        let inc = csr.incident(v);
        let mut cur = ws.cursor.get(v.index()) as usize;
        let mut advanced = false;
        while cur < inc.len() {
            let (w, e) = inc[cur];
            cur += 1;
            if subset.contains(e) && ws.edge_used.insert(e.index()) {
                ws.walk_stack.push((w, Some(e)));
                advanced = true;
                break;
            }
        }
        ws.cursor.set(v.index(), cur as u32);
        if !advanced {
            ws.walk_stack.pop();
            out_nodes.push(v);
            if let Some(e) = via {
                out_edges.push(e);
            }
        }
    }
    out_nodes.reverse();
    out_edges.reverse();
    debug_assert_eq!(out_edges.len(), expected, "walk must use every edge");
    Walk::from_parts_trusted(g, out_nodes, out_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full(g: &Graph) -> EdgeSubset {
        EdgeSubset::full(g)
    }

    #[test]
    fn triangle_has_circuit() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = full(&g);
        assert!(has_euler_circuit(&g, &s));
        let w = euler_walk(&g, &s, None).unwrap();
        assert!(w.is_closed());
        assert_eq!(w.len(), 3);
        assert!(w.validate(&g).is_ok());
    }

    #[test]
    fn path_graph_has_open_walk_between_odd_nodes() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = full(&g);
        assert!(!has_euler_circuit(&g, &s));
        assert!(has_euler_walk(&g, &s));
        let w = euler_walk(&g, &s, None).unwrap();
        assert_eq!(w.len(), 3);
        let ends = [w.start(), w.end()];
        assert!(ends.contains(&NodeId(0)) && ends.contains(&NodeId(3)));
    }

    #[test]
    fn prefer_start_is_honored_for_circuits() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let w = euler_walk(&g, &full(&g), Some(NodeId(2))).unwrap();
        assert_eq!(w.start(), NodeId(2));
        assert_eq!(w.end(), NodeId(2));
    }

    #[test]
    fn konigsberg_has_no_walk() {
        // The classic: 4 nodes all of odd degree (multigraph).
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let s = full(&g);
        assert_eq!(odd_degree_nodes(&g, &s).len(), 4);
        assert_eq!(
            euler_walk(&g, &s, None),
            Err(EulerError::TooManyOddNodes(4))
        );
    }

    #[test]
    fn disconnected_subset_rejected_but_components_work() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = full(&g);
        assert_eq!(euler_walk(&g, &s, None), Err(EulerError::Disconnected));
        let walks = component_euler_walks(&g, &s).unwrap();
        assert_eq!(walks.len(), 2);
        for w in &walks {
            assert!(w.is_closed());
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn empty_subset_is_an_error() {
        let g = Graph::new(3);
        let s = EdgeSubset::from_edges(&g, []);
        assert_eq!(euler_walk(&g, &s, None), Err(EulerError::Empty));
        assert!(component_euler_walks(&g, &s).unwrap().is_empty());
    }

    #[test]
    fn circuit_on_multigraph_with_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let w = euler_walk(&g, &full(&g), None).unwrap();
        assert!(w.is_closed());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn walk_on_subset_only_uses_subset_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let s = EdgeSubset::from_edges(&g, [EdgeId(0), EdgeId(1), EdgeId(2)]);
        let w = euler_walk(&g, &s, None).unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.edges().contains(&EdgeId(3)));
    }

    #[test]
    fn trail_decomposition_matches_odd_node_count() {
        // K4 has 4 odd nodes -> 2 trails; C5 -> 1 trail; path -> 1 trail.
        let k4 = generators::complete(4);
        let trails = trail_decomposition(&k4, &full(&k4));
        assert_eq!(trails.len(), 2);
        let covered: usize = trails.iter().map(Walk::len).sum();
        assert_eq!(covered, 6);
        for t in &trails {
            assert!(t.validate(&k4).is_ok());
        }

        let c5 = generators::cycle(5);
        assert_eq!(trail_decomposition(&c5, &full(&c5)).len(), 1);
        let p4 = generators::path(4);
        assert_eq!(trail_decomposition(&p4, &full(&p4)).len(), 1);
    }

    #[test]
    fn trail_decomposition_covers_disconnected_subsets() {
        // Two K4s: 2 trails each.
        let mut g = Graph::new(8);
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    g.add_edge(NodeId(base + a), NodeId(base + b));
                }
            }
        }
        let trails = trail_decomposition(&g, &full(&g));
        assert_eq!(trails.len(), 4);
        let mut covered = vec![false; g.num_edges()];
        for t in &trails {
            assert!(t.validate(&g).is_ok());
            for &e in t.edges() {
                assert!(!covered[e.index()]);
                covered[e.index()] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn trail_decomposition_on_star_gives_half_leaves() {
        // K_{1,6}: 6 odd leaves + even hub -> wait, hub degree 6 (even),
        // leaves odd: 6 odd nodes -> 3 trails.
        let g = generators::star(7);
        let trails = trail_decomposition(&g, &full(&g));
        assert_eq!(trails.len(), 3);
        assert!(trails.iter().all(|t| t.len() == 2));
    }

    #[test]
    fn random_even_graphs_always_get_component_circuits() {
        // Build random graphs, then keep doubling edges to force even
        // degrees: union of two copies of each edge makes all degrees even.
        for seed in 0..8u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let base = generators::gnm(12, 20, &mut r);
            let mut g = Graph::new(12);
            for e in base.edges() {
                let (u, v) = base.endpoints(e);
                g.add_edge(u, v);
                g.add_edge(u, v);
            }
            let s = full(&g);
            let walks = component_euler_walks(&g, &s).unwrap();
            let total: usize = walks.iter().map(Walk::len).sum();
            assert_eq!(total, g.num_edges());
            for w in &walks {
                assert!(w.is_closed());
                assert!(w.validate(&g).is_ok());
            }
        }
    }

    #[test]
    fn workspace_variants_match_plain_entry_points() {
        let g = generators::gnm(25, 70, &mut StdRng::seed_from_u64(9));
        let s = full(&g);
        let mut ws = Workspace::new();
        assert_eq!(
            component_euler_walks(&g, &s).ok().map(|w| w.len()),
            component_euler_walks_in(&g, &s, &mut ws)
                .ok()
                .map(|w| w.len())
        );
        let a = trail_decomposition(&g, &s);
        let b = trail_decomposition_in(&g, &s, &mut ws);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.edges(), y.edges());
        }
    }
}
