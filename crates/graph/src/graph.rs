//! The core undirected multigraph type.

use crate::csr::Csr;
use crate::ids::{EdgeId, NodeId};
use std::fmt;
use std::sync::OnceLock;

/// An undirected multigraph with dense node and edge ids.
///
/// ```
/// use grooming_graph::graph::Graph;
/// use grooming_graph::ids::NodeId;
///
/// let mut g = Graph::new(3);
/// let e = g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(NodeId(1)), 2);
/// assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(1));
/// ```
///
/// * Nodes are `0..n` and fixed at construction time.
/// * Edges are appended and never removed; algorithms that need a mutable
///   edge set work on [`crate::view::EdgeSubset`] views instead, which keeps
///   edge ids stable across the whole grooming pipeline (an id allocated by a
///   traffic-graph conversion still identifies the same demand pair after
///   partitioning).
/// * Parallel edges are allowed (the grooming algorithms introduce *virtual*
///   edges that may duplicate existing pairs). Self-loops are rejected:
///   a traffic demand from a node to itself needs no wavelength at all, and
///   none of the paper's machinery is defined for loops.
#[derive(Clone, Default)]
pub struct Graph {
    /// endpoints[e] = (u, v) with u, v the endpoints of edge e (unordered;
    /// stored in insertion order).
    endpoints: Vec<(NodeId, NodeId)>,
    /// adj[v] = list of (neighbor, connecting edge id).
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// Flat CSR snapshot of `adj`, built lazily on first [`Graph::csr`] call
    /// and dropped on mutation.
    csr: OnceLock<Csr>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            endpoints: Vec::new(),
            adj: vec![Vec::new(); n],
            csr: OnceLock::new(),
        }
    }

    /// Creates a graph with `n` nodes and the given endpoint pairs.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range or a pair is a self-loop.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (counting parallels).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Adds an undirected edge `{u, v}` and returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or on a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(
            u.index() < self.num_nodes() && v.index() < self.num_nodes(),
            "edge endpoint out of range: ({u:?}, {v:?}) with n = {}",
            self.num_nodes()
        );
        assert_ne!(u, v, "self-loops are not supported");
        let id = EdgeId::new(self.endpoints.len());
        self.endpoints.push((u, v));
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        self.csr.take(); // snapshot is stale now
        id
    }

    /// The flat CSR adjacency snapshot, built on first use and cached until
    /// the next mutation. Reports the same `(neighbor, edge)` pairs in the
    /// same order as [`Graph::incident`]; hot traversal loops prefer it
    /// because all incidence lists live in one allocation.
    #[inline]
    pub fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::build(self))
    }

    /// The endpoints of edge `e`, in insertion order.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Given edge `e` incident to `v`, returns the other endpoint.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("{v:?} is not an endpoint of {e:?} = ({a:?}, {b:?})")
        }
    }

    /// Degree of `v` (parallel edges each count once per copy).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Incident `(neighbor, edge)` pairs of `v`, in insertion order.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Iterator over the neighbors of `v` (with multiplicity).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().map(|&(w, _)| w)
    }

    /// `true` if at least one edge joins `u` and `v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()].iter().any(|&(w, _)| w == b)
    }

    /// Some edge id joining `u` and `v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()]
            .iter()
            .find(|&&(w, _)| w == b)
            .map(|&(_, e)| e)
    }

    /// `true` if the graph has no parallel edges.
    pub fn is_simple(&self) -> bool {
        // Vec-indexed seen-map keyed by the smaller endpoint: bucket `a`
        // holds the larger endpoints already paired with `a`. Degrees are
        // small in practice, so the linear bucket scan beats hashing.
        let mut seen: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_nodes()];
        for &(u, v) in &self.endpoints {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            let bucket = &mut seen[a.index()];
            if bucket.contains(&b) {
                return false;
            }
            bucket.push(b);
        }
        true
    }

    /// The first edge id of every distinct endpoint pair, in insertion
    /// order — i.e. the edge list with parallel copies dropped. Uses the
    /// same smaller-endpoint seen-map as [`Graph::is_simple`].
    pub fn edges_deduped(&self) -> Vec<EdgeId> {
        let mut seen: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_nodes()];
        let mut out = Vec::with_capacity(self.num_edges());
        for (i, &(u, v)) in self.endpoints.iter().enumerate() {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            let bucket = &mut seen[a.index()];
            if !bucket.contains(&b) {
                bucket.push(b);
                out.push(EdgeId::new(i));
            }
        }
        out
    }

    /// Maximum degree Δ(G); zero on an empty node set.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree δ(G); zero on an empty node set.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// The full degree sequence, indexed by node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.degrees_into(&mut out);
        out
    }

    /// Writes the degree sequence into `out` (cleared first), reusing its
    /// allocation — the form the sweep hot path uses.
    pub fn degrees_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.adj.iter().map(Vec::len));
    }

    /// `true` if every node has degree exactly `r`.
    pub fn is_regular(&self, r: usize) -> bool {
        self.adj.iter().all(|a| a.len() == r)
    }

    /// If the graph is regular, its common degree.
    pub fn regularity(&self) -> Option<usize> {
        let mut it = self.adj.iter().map(Vec::len);
        let first = it.next()?;
        it.all(|d| d == first).then_some(first)
    }

    /// Number of nodes with odd degree (always even, by handshake).
    pub fn odd_degree_count(&self) -> usize {
        self.adj.iter().filter(|a| a.len() % 2 == 1).count()
    }

    /// Nodes with nonzero degree.
    pub fn non_isolated_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.non_isolated_nodes_into(&mut out);
        out
    }

    /// Writes the nodes with nonzero degree into `out` (cleared first),
    /// reusing its allocation.
    pub fn non_isolated_nodes_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.nodes().filter(|&v| self.degree(v) > 0));
    }

    /// All edges as endpoint pairs (insertion order).
    pub fn edge_list(&self) -> &[(NodeId, NodeId)] {
        &self.endpoints
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.num_nodes(),
            self.num_edges(),
            self.endpoints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert!(g.is_simple());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle_degrees_and_edges() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_regular(2));
        assert_eq!(g.regularity(), Some(2));
        assert_eq!(g.odd_degree_count(), 0);
    }

    #[test]
    fn endpoints_and_other_endpoint() {
        let g = triangle();
        let (u, v) = g.endpoints(EdgeId(0));
        assert_eq!((u, v), (NodeId(0), NodeId(1)));
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(0)), NodeId(1));
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_endpoint_rejects_non_endpoint() {
        let g = triangle();
        let _ = g.other_endpoint(EdgeId(0), NodeId(2));
    }

    #[test]
    fn parallel_edges_are_allowed_and_detected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!(!g.is_simple());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    fn has_edge_and_find_edge() {
        let g = triangle();
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert_eq!(g.find_edge(NodeId(1), NodeId(2)), Some(EdgeId(1)));
        let mut h = Graph::new(3);
        h.add_edge(NodeId(0), NodeId(1));
        assert!(!h.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(h.find_edge(NodeId(1), NodeId(2)), None);
    }

    #[test]
    fn neighbors_respect_multiplicity() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        let ns: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(ns, vec![NodeId(1), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn degree_sequence_and_extremes() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.odd_degree_count(), 4);
        assert_eq!(g.regularity(), None);
    }

    #[test]
    fn edges_deduped_keeps_first_copy() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1)); // e0
        g.add_edge(NodeId(1), NodeId(0)); // e1, parallel to e0
        g.add_edge(NodeId(1), NodeId(2)); // e2
        g.add_edge(NodeId(0), NodeId(1)); // e3, parallel again
        assert_eq!(g.edges_deduped(), vec![EdgeId(0), EdgeId(2)]);
        let simple = triangle();
        assert_eq!(simple.edges_deduped().len(), simple.num_edges());
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut deg = vec![99usize; 10];
        g.degrees_into(&mut deg);
        assert_eq!(deg, vec![3, 1, 1, 1]);
        let mut nodes = Vec::new();
        g.non_isolated_nodes_into(&mut nodes);
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn non_isolated_nodes_skips_isolated() {
        let g = Graph::from_edges(4, &[(1, 2)]);
        assert_eq!(g.non_isolated_nodes(), vec![NodeId(1), NodeId(2)]);
    }
}
