//! Spanning trees and forests.
//!
//! `SpanT_Euler`'s quality is governed by the number `c` of connected
//! components of `G\T`, which depends on which spanning tree `T` is chosen
//! (the paper's concluding remarks call out exactly this knob). This module
//! provides several strategies — BFS, DFS, randomized Kruskal, and a
//! degree-minimizing local search in the spirit of Fürer–Raghavachari — all
//! producing the same [`SpanningForest`] representation, so the algorithm and
//! the ablation harness can swap strategies freely.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::workspace::Workspace;
use rand::seq::SliceRandom;
use rand::Rng;

/// Disjoint-set union (union by size, path halving).
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
    /// Number of disjoint sets currently represented.
    pub sets: usize,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Spanning-tree construction strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeStrategy {
    /// Breadth-first search tree from the lowest node id of each component.
    Bfs,
    /// Depth-first search tree from the lowest node id of each component.
    Dfs,
    /// Kruskal over a uniformly shuffled edge order (a uniformly random
    /// *maximal forest* in edge-order distribution, not a uniform spanning
    /// tree — good enough for tie-breaking diversity).
    RandomKruskal,
    /// Start from a BFS forest, then locally swap edges to reduce the
    /// maximum tree degree (Fürer–Raghavachari-style improvement steps).
    LowDegree,
}

impl TreeStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [TreeStrategy; 4] = [
        TreeStrategy::Bfs,
        TreeStrategy::Dfs,
        TreeStrategy::RandomKruskal,
        TreeStrategy::LowDegree,
    ];
}

impl std::fmt::Display for TreeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TreeStrategy::Bfs => "bfs",
            TreeStrategy::Dfs => "dfs",
            TreeStrategy::RandomKruskal => "random-kruskal",
            TreeStrategy::LowDegree => "low-degree",
        };
        f.write_str(s)
    }
}

/// A spanning forest of a graph: one spanning tree per connected component.
///
/// Stores the tree edge set plus rooted parent pointers (one root per
/// component), which is the shape the tree utilities in [`crate::tree`]
/// consume.
#[derive(Clone, Debug)]
pub struct SpanningForest {
    /// Tree edges (n − #components of them).
    pub edges: Vec<EdgeId>,
    /// `parent[v] = Some((p, e))` where `p` is `v`'s parent and `e` the tree
    /// edge joining them; `None` for component roots.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
    /// One root per connected component, in ascending node order.
    pub roots: Vec<NodeId>,
    /// Depth of each node below its root.
    pub depth: Vec<usize>,
}

impl SpanningForest {
    /// `true` if edge `e` is a tree edge.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        // edges list is small relative to m in dense graphs; use a scan-free
        // check only when needed by hot code (callers build EdgeSubset).
        self.edges.contains(&e)
    }

    /// Tree degree of every node (number of incident tree edges).
    pub fn degrees(&self, g: &Graph) -> Vec<usize> {
        let mut deg = vec![0usize; g.num_nodes()];
        for &e in &self.edges {
            let (u, v) = g.endpoints(e);
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        deg
    }

    /// Maximum tree degree Δ(T).
    pub fn max_degree(&self, g: &Graph) -> usize {
        self.degrees(g).into_iter().max().unwrap_or(0)
    }

    /// Rebuilds rooted parent pointers from an unrooted tree-edge set.
    #[cfg(test)]
    fn from_edge_set(g: &Graph, tree_edges: Vec<EdgeId>) -> Self {
        from_edge_set_in(g, tree_edges, &mut Workspace::new())
    }
}

/// [`SpanningForest`] reconstruction against workspace scratch: the tree
/// adjacency is counting-sorted into flat buffers and the BFS reuses the
/// workspace's visited set and queue. Per-node neighbor order matches the
/// nested adjacency this replaced (edges scanned in `tree_edges` order).
fn from_edge_set_in(g: &Graph, tree_edges: Vec<EdgeId>, ws: &mut Workspace) -> SpanningForest {
    let n = g.num_nodes();
    ws.bucket_buf.clear();
    ws.bucket_buf.resize(n + 1, 0);
    for &e in &tree_edges {
        let (u, v) = g.endpoints(e);
        ws.bucket_buf[u.index() + 1] += 1;
        ws.bucket_buf[v.index() + 1] += 1;
    }
    for i in 0..n {
        ws.bucket_buf[i + 1] += ws.bucket_buf[i];
    }
    ws.bucket_buf2.clear();
    ws.bucket_buf2.extend_from_slice(&ws.bucket_buf[..n]);
    ws.pair_buf.clear();
    ws.pair_buf
        .resize(2 * tree_edges.len(), (NodeId(0), EdgeId(0)));
    for &e in &tree_edges {
        let (u, v) = g.endpoints(e);
        ws.pair_buf[ws.bucket_buf2[u.index()]] = (v, e);
        ws.bucket_buf2[u.index()] += 1;
        ws.pair_buf[ws.bucket_buf2[v.index()]] = (u, e);
        ws.bucket_buf2[v.index()] += 1;
    }
    let mut parent = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut roots = Vec::new();
    ws.visited.reset(n);
    ws.queue.clear();
    for r in g.nodes() {
        if !ws.visited.insert(r.index()) {
            continue;
        }
        roots.push(r);
        ws.queue.push_back(r);
        while let Some(v) = ws.queue.pop_front() {
            for idx in ws.bucket_buf[v.index()]..ws.bucket_buf[v.index() + 1] {
                let (w, e) = ws.pair_buf[idx];
                if ws.visited.insert(w.index()) {
                    parent[w.index()] = Some((v, e));
                    depth[w.index()] = depth[v.index()] + 1;
                    ws.queue.push_back(w);
                }
            }
        }
    }
    SpanningForest {
        edges: tree_edges,
        parent,
        roots,
        depth,
    }
}

/// Computes a spanning forest of `g` with the given strategy.
///
/// `rng` is consulted only by the randomized strategies; deterministic
/// strategies ignore it.
pub fn spanning_forest<R: Rng>(g: &Graph, strategy: TreeStrategy, rng: &mut R) -> SpanningForest {
    spanning_forest_in(g, strategy, rng, &mut Workspace::new())
}

/// [`spanning_forest`] against a caller-owned [`Workspace`].
pub fn spanning_forest_in<R: Rng>(
    g: &Graph,
    strategy: TreeStrategy,
    rng: &mut R,
    ws: &mut Workspace,
) -> SpanningForest {
    match strategy {
        TreeStrategy::Bfs => search_forest_in(g, true, ws),
        TreeStrategy::Dfs => search_forest_in(g, false, ws),
        TreeStrategy::RandomKruskal => random_kruskal_forest_in(g, rng, ws),
        TreeStrategy::LowDegree => low_degree_forest_in(g, rng, ws),
    }
}

fn search_forest_in(g: &Graph, bfs: bool, ws: &mut Workspace) -> SpanningForest {
    let csr = g.csr();
    let n = g.num_nodes();
    let mut parent = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut roots = Vec::new();
    let mut edges = Vec::new();
    ws.visited.reset(n);
    ws.queue.clear();
    for r in g.nodes() {
        if !ws.visited.insert(r.index()) {
            continue;
        }
        roots.push(r);
        ws.queue.push_back(r);
        while let Some(v) = if bfs {
            ws.queue.pop_front()
        } else {
            ws.queue.pop_back()
        } {
            for &(w, e) in csr.incident(v) {
                if ws.visited.insert(w.index()) {
                    parent[w.index()] = Some((v, e));
                    depth[w.index()] = depth[v.index()] + 1;
                    edges.push(e);
                    ws.queue.push_back(w);
                }
            }
        }
    }
    // DFS via pop_back explores stack-wise but records parents when first
    // seen, which is a valid spanning forest either way.
    SpanningForest {
        edges,
        parent,
        roots,
        depth,
    }
}

fn random_kruskal_forest_in<R: Rng>(g: &Graph, rng: &mut R, ws: &mut Workspace) -> SpanningForest {
    let mut order: Vec<EdgeId> = g.edges().collect();
    order.shuffle(rng);
    let mut dsu = Dsu::new(g.num_nodes());
    let mut tree_edges = Vec::with_capacity(g.num_nodes().saturating_sub(1));
    for e in order {
        let (u, v) = g.endpoints(e);
        if dsu.union(u.index(), v.index()) {
            tree_edges.push(e);
        }
    }
    from_edge_set_in(g, tree_edges, ws)
}

/// Local-search tree with small maximum degree.
///
/// Repeatedly looks for a non-tree edge `{u, w}` whose fundamental cycle
/// passes through a node `x` of current maximum tree degree while both `u`
/// and `w` have tree degree ≤ Δ(T) − 2; swapping a cycle edge at `x` for
/// `{u, w}` then reduces the degree pressure at `x`. This is the improvement
/// step used by Fürer–Raghavachari's (Δ*+1)-approximation, run here as plain
/// hill climbing with an iteration cap — sufficient for the ablation study.
fn low_degree_forest_in<R: Rng>(g: &Graph, rng: &mut R, ws: &mut Workspace) -> SpanningForest {
    let mut forest = search_forest_in(g, true, ws);
    let m = g.num_edges();
    if m == 0 {
        return forest;
    }
    let mut non_tree: Vec<EdgeId> = {
        let mut in_tree = vec![false; m];
        for &e in &forest.edges {
            in_tree[e.index()] = true;
        }
        g.edges().filter(|e| !in_tree[e.index()]).collect()
    };
    non_tree.shuffle(rng);

    let max_rounds = 4 * g.num_nodes().max(8);
    for _ in 0..max_rounds {
        let deg = forest.degrees(g);
        let delta = deg.iter().copied().max().unwrap_or(0);
        if delta <= 2 {
            break; // a Hamiltonian-path tree; cannot do better
        }
        let mut improved = false;
        for (slot, &e) in non_tree.iter().enumerate() {
            let (u, w) = g.endpoints(e);
            if deg[u.index()] > delta - 2 || deg[w.index()] > delta - 2 {
                continue;
            }
            // Fundamental cycle = tree path u..w. Find a max-degree node on
            // it and remove one of its path edges.
            let path = crate::tree::tree_path(g, &forest, u, w)
                .expect("non-tree edge endpoints must be tree-connected");
            let mut swap_edge = None;
            for &pe in &path {
                let (a, b) = g.endpoints(pe);
                if deg[a.index()] == delta || deg[b.index()] == delta {
                    swap_edge = Some(pe);
                    break;
                }
            }
            if let Some(out) = swap_edge {
                let mut edges = forest.edges.clone();
                let pos = edges.iter().position(|&x| x == out).unwrap();
                edges[pos] = e;
                forest = from_edge_set_in(g, edges, ws);
                non_tree[slot] = out;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    forest
}

/// Validates that `forest` is a maximal spanning forest of `g`: acyclic,
/// using real edges of `g`, and spanning every connected component.
pub fn is_valid_spanning_forest(g: &Graph, forest: &SpanningForest) -> bool {
    let n = g.num_nodes();
    let comp = crate::traversal::connected_components(g);
    if forest.edges.len() != n - comp.count {
        return false;
    }
    let mut dsu = Dsu::new(n);
    for &e in &forest.edges {
        if e.index() >= g.num_edges() {
            return false;
        }
        let (u, v) = g.endpoints(e);
        if !dsu.union(u.index(), v.index()) {
            return false; // cycle
        }
    }
    // Acyclic + n - #components edges => spans every component.
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn dsu_merges_and_counts() {
        let mut d = Dsu::new(4);
        assert_eq!(d.sets, 4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_eq!(d.sets, 2);
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
    }

    #[test]
    fn all_strategies_yield_valid_forests() {
        let g = generators::gnm(20, 60, &mut rng());
        for s in TreeStrategy::ALL {
            let f = spanning_forest(&g, s, &mut rng());
            assert!(is_valid_spanning_forest(&g, &f), "strategy {s}");
        }
    }

    #[test]
    fn forest_on_disconnected_graph_has_multiple_roots() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let f = spanning_forest(&g, TreeStrategy::Bfs, &mut rng());
        assert_eq!(f.edges.len(), 3);
        assert_eq!(f.roots.len(), 3); // {0,1,2}, {3,4}, {5}
        assert!(is_valid_spanning_forest(&g, &f));
    }

    #[test]
    fn parent_pointers_are_consistent() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let f = spanning_forest(&g, TreeStrategy::Bfs, &mut rng());
        for v in g.nodes() {
            if let Some((p, e)) = f.parent[v.index()] {
                let (a, b) = g.endpoints(e);
                assert!((a, b) == (v, p) || (a, b) == (p, v));
                assert_eq!(f.depth[v.index()], f.depth[p.index()] + 1);
            } else {
                assert!(f.roots.contains(&v));
                assert_eq!(f.depth[v.index()], 0);
            }
        }
    }

    #[test]
    fn low_degree_tree_beats_bfs_on_a_star_plus_cycle() {
        // A wheel: hub 0 connected to all rim nodes plus rim cycle. BFS from
        // node 0 yields the star (Δ = n-1). The low-degree strategy should
        // find a much lower-degree tree using rim edges.
        let n = 12;
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((0u32, i as u32));
        }
        for i in 1..n {
            let j = if i == n - 1 { 1 } else { i + 1 };
            edges.push((i as u32, j as u32));
        }
        let g = Graph::from_edges(n, &edges);
        let bfs = spanning_forest(&g, TreeStrategy::Bfs, &mut rng());
        let low = spanning_forest(&g, TreeStrategy::LowDegree, &mut rng());
        assert!(is_valid_spanning_forest(&g, &low));
        assert!(low.max_degree(&g) < bfs.max_degree(&g));
        assert!(low.max_degree(&g) <= 4);
    }

    #[test]
    fn kruskal_forest_is_valid_on_multigraph() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let f = spanning_forest(&g, TreeStrategy::RandomKruskal, &mut rng());
        assert!(is_valid_spanning_forest(&g, &f));
        assert_eq!(f.edges.len(), 2);
    }

    #[test]
    fn validator_rejects_cyclic_edge_set() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let bad = SpanningForest::from_edge_set(&g, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert!(!is_valid_spanning_forest(&g, &bad));
    }
}
