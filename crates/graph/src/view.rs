//! Edge-subset views of a graph.
//!
//! The grooming cost of a wavelength is the number of *distinct nodes*
//! touched by the demand edges groomed onto it, and the paper's algorithms
//! constantly reason about edge subsets of a fixed traffic graph (`G\T`,
//! `E_odd`, matchings, parts of a partition, ...). [`EdgeSubset`] is the
//! shared currency for all of them: an immutable set of edge ids over a
//! parent [`Graph`], with the queries the algorithms need.
//!
//! Membership is stored word-packed (64 edges per `u64`, via [`crate::bitset`])
//! rather than as a `Vec<bool>`: an 8× smaller footprint, and the set-algebra
//! operations (`complement`, `minus`, `union`) and counting queries become
//! word-at-a-time bit operations instead of per-edge branches.

use crate::bitset;
use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::workspace::Workspace;

/// An immutable subset of the edges of a parent graph.
///
/// Stores both the edge list (iteration order = construction order) and a
/// word-packed membership bitset (O(1) `contains`). An `EdgeSubset` borrows
/// nothing: it is a plain value tied to a parent graph only by edge-id
/// compatibility, so callers must query it against the same graph it was
/// built from.
#[derive(Clone, Debug, Default)]
pub struct EdgeSubset {
    edges: Vec<EdgeId>,
    member: Vec<u64>,
}

impl EdgeSubset {
    /// Builds a subset from edge ids. Duplicate ids are kept once.
    ///
    /// # Panics
    /// Panics if any id is out of range for `g`.
    pub fn from_edges(g: &Graph, ids: impl IntoIterator<Item = EdgeId>) -> Self {
        let mut member = vec![0u64; bitset::words_for(g.num_edges())];
        let mut edges = Vec::new();
        for e in ids {
            assert!(
                e.index() < g.num_edges(),
                "edge {e:?} out of range (m = {})",
                g.num_edges()
            );
            if !bitset::test(&member, e.index()) {
                bitset::set(&mut member, e.index());
                edges.push(e);
            }
        }
        EdgeSubset { edges, member }
    }

    /// The subset containing every edge of `g`.
    pub fn full(g: &Graph) -> Self {
        let m = g.num_edges();
        let mut member = vec![!0u64; bitset::words_for(m)];
        let tail = m % bitset::WORD_BITS;
        if tail != 0 {
            if let Some(last) = member.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        EdgeSubset {
            edges: g.edges().collect(),
            member,
        }
    }

    /// The complement of this subset within `g`.
    pub fn complement(&self, g: &Graph) -> Self {
        let m = g.num_edges();
        let words = bitset::words_for(m);
        let mut member = vec![0u64; words];
        for (i, w) in member.iter_mut().enumerate() {
            *w = !self.member.get(i).copied().unwrap_or(0);
        }
        let tail = m % bitset::WORD_BITS;
        if tail != 0 {
            if let Some(last) = member.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        // `ones` yields ascending ids — the order `g.edges().filter(...)`
        // produced before membership went word-packed.
        let edges = bitset::ones(&member).map(EdgeId::new).collect();
        EdgeSubset { edges, member }
    }

    /// Set-minus: edges of `self` not in `other`.
    pub fn minus(&self, _g: &Graph, other: &EdgeSubset) -> Self {
        let mut member = self.member.clone();
        for (w, o) in member.iter_mut().zip(&other.member) {
            *w &= !o;
        }
        let edges = self
            .edges
            .iter()
            .copied()
            .filter(|e| !other.contains(*e))
            .collect();
        EdgeSubset { edges, member }
    }

    /// Set union.
    pub fn union(&self, _g: &Graph, other: &EdgeSubset) -> Self {
        let mut member = self.member.clone();
        if member.len() < other.member.len() {
            member.resize(other.member.len(), 0);
        }
        for (w, o) in member.iter_mut().zip(&other.member) {
            *w |= o;
        }
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().copied().filter(|e| !self.contains(*e)));
        EdgeSubset { edges, member }
    }

    /// Number of edges in the subset.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Popcount of the membership bitset. Always equals [`len`](Self::len);
    /// exposed as an O(m/64) cross-check on the two representations.
    pub fn member_count(&self) -> usize {
        bitset::count(&self.member)
    }

    /// Number of edges in both `self` and `other` — a word-at-a-time
    /// popcount, no per-edge iteration.
    pub fn intersection_count(&self, other: &EdgeSubset) -> usize {
        bitset::intersection_count(&self.member, &other.member)
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        bitset::test_checked(&self.member, e.index())
    }

    /// Edge ids in construction order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Degree of `v` counting only subset edges.
    pub fn degree(&self, g: &Graph, v: NodeId) -> usize {
        g.csr()
            .incident(v)
            .iter()
            .filter(|&&(_, e)| self.contains(e))
            .count()
    }

    /// The distinct nodes touched by subset edges, in ascending order.
    ///
    /// For a wavelength's edge set this is exactly the set of ring nodes
    /// that need a SADM on that wavelength.
    pub fn touched_nodes(&self, g: &Graph) -> Vec<NodeId> {
        let mut seen = vec![0u64; bitset::words_for(g.num_nodes())];
        for &e in &self.edges {
            let (u, v) = g.endpoints(e);
            bitset::set(&mut seen, u.index());
            bitset::set(&mut seen, v.index());
        }
        bitset::ones(&seen).map(NodeId::new).collect()
    }

    /// Number of distinct nodes touched by subset edges (the SADM cost of
    /// the subset when it is one wavelength of a grooming).
    pub fn touched_node_count(&self, g: &Graph) -> usize {
        let mut seen = vec![0u64; bitset::words_for(g.num_nodes())];
        for &e in &self.edges {
            let (u, v) = g.endpoints(e);
            bitset::set(&mut seen, u.index());
            bitset::set(&mut seen, v.index());
        }
        bitset::count(&seen)
    }

    /// Connected components of the subgraph `(touched nodes, subset edges)`.
    ///
    /// Isolated nodes of the parent graph are *not* counted; every returned
    /// component contains at least one edge. Each component is returned as
    /// its list of edge ids.
    pub fn edge_components(&self, g: &Graph) -> Vec<Vec<EdgeId>> {
        let csr = g.csr();
        let mut comp_of = vec![usize::MAX; g.num_nodes()];
        let mut comps: Vec<Vec<EdgeId>> = Vec::new();
        let mut stack = Vec::new();
        for &start_e in &self.edges {
            let (root, _) = g.endpoints(start_e);
            if comp_of[root.index()] != usize::MAX {
                continue;
            }
            let cid = comps.len();
            comps.push(Vec::new());
            comp_of[root.index()] = cid;
            stack.push(root);
            let mut edge_seen = Vec::new();
            while let Some(v) = stack.pop() {
                for &(w, e) in csr.incident(v) {
                    if !self.contains(e) {
                        continue;
                    }
                    edge_seen.push(e);
                    if comp_of[w.index()] == usize::MAX {
                        comp_of[w.index()] = cid;
                        stack.push(w);
                    }
                }
            }
            // Each subset edge incident to the component was pushed twice
            // (once per endpoint); dedup into the component.
            edge_seen.sort_unstable();
            edge_seen.dedup();
            comps[cid] = edge_seen;
        }
        comps
    }

    /// Number of connected components of the *spanning* subgraph
    /// `(V(G), subset edges)` — isolated nodes count as singleton
    /// components. This is the `c` of the paper's Lemma 4 (components of
    /// `G\T` over the full node set).
    ///
    /// Single traversal: components with edges and the touched-node count
    /// are tallied in one pass (no per-component edge lists are built).
    pub fn spanning_component_count(&self, g: &Graph) -> usize {
        self.spanning_component_count_in(g, &mut Workspace::new())
    }

    /// [`spanning_component_count`](Self::spanning_component_count) against
    /// a caller-owned [`Workspace`] (no per-call allocations).
    pub fn spanning_component_count_in(&self, g: &Graph, ws: &mut Workspace) -> usize {
        let csr = g.csr();
        ws.visited.reset(g.num_nodes());
        ws.node_stack.clear();
        let mut with_edges = 0usize;
        let mut touched = 0usize;
        for &start_e in &self.edges {
            let (root, _) = g.endpoints(start_e);
            if !ws.visited.insert(root.index()) {
                continue;
            }
            with_edges += 1;
            touched += 1;
            ws.node_stack.push(root);
            while let Some(v) = ws.node_stack.pop() {
                for &(w, e) in csr.incident(v) {
                    if self.contains(e) && ws.visited.insert(w.index()) {
                        touched += 1;
                        ws.node_stack.push(w);
                    }
                }
            }
        }
        with_edges + (g.num_nodes() - touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // nodes 0-2 form a triangle, nodes 3-5 form a triangle, node 6 isolated
        Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn full_subset_covers_everything() {
        let g = two_triangles();
        let s = EdgeSubset::full(&g);
        assert_eq!(s.len(), 6);
        assert_eq!(s.member_count(), 6);
        assert_eq!(s.touched_node_count(&g), 6);
        assert_eq!(s.edge_components(&g).len(), 2);
        assert_eq!(s.spanning_component_count(&g), 3); // two triangles + isolated node
    }

    #[test]
    fn from_edges_dedups() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, [EdgeId(0), EdgeId(0), EdgeId(1)]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(EdgeId(0)));
        assert!(!s.contains(EdgeId(5)));
    }

    #[test]
    fn touched_nodes_sorted_and_exact() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, [EdgeId(3)]); // edge (3,4)
        assert_eq!(s.touched_nodes(&g), vec![NodeId(3), NodeId(4)]);
        assert_eq!(s.touched_node_count(&g), 2);
    }

    #[test]
    fn degree_counts_only_subset_edges() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, [EdgeId(0), EdgeId(1)]); // (0,1), (1,2)
        assert_eq!(s.degree(&g, NodeId(1)), 2);
        assert_eq!(s.degree(&g, NodeId(0)), 1);
        assert_eq!(s.degree(&g, NodeId(3)), 0);
    }

    #[test]
    fn complement_and_minus_and_union() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, [EdgeId(0), EdgeId(1)]);
        let c = s.complement(&g);
        assert_eq!(c.len(), 4);
        assert_eq!(c.member_count(), 4);
        assert!(!c.contains(EdgeId(0)));
        assert_eq!(s.intersection_count(&c), 0);
        let u = s.union(&g, &c);
        assert_eq!(u.len(), 6);
        assert_eq!(u.intersection_count(&s), 2);
        let d = u.minus(&g, &s);
        assert_eq!(d.len(), 4);
        assert_eq!(d.member_count(), 4);
        assert!(d.contains(EdgeId(5)));
    }

    #[test]
    fn complement_edges_ascend() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, [EdgeId(4), EdgeId(1)]);
        let c = s.complement(&g);
        assert_eq!(c.edges(), &[EdgeId(0), EdgeId(2), EdgeId(3), EdgeId(5)]);
    }

    #[test]
    fn edge_components_partition_the_subset() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, [EdgeId(0), EdgeId(4)]); // (0,1) and (4,5)
        let comps = s.edge_components(&g);
        assert_eq!(comps.len(), 2);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_subset_has_all_singletons() {
        let g = two_triangles();
        let s = EdgeSubset::from_edges(&g, []);
        assert!(s.is_empty());
        assert_eq!(s.spanning_component_count(&g), 7);
        assert_eq!(s.touched_node_count(&g), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let g = two_triangles();
        let _ = EdgeSubset::from_edges(&g, [EdgeId(99)]);
    }

    /// A path graph with exactly `m` edges (edge `i` = `(i, i+1)`).
    fn path_graph(m: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..m as u32).map(|i| (i, i + 1)).collect();
        Graph::from_edges(m + 1, &edges)
    }

    #[test]
    fn set_algebra_masks_word_tails() {
        // Membership is packed 64 edges per word; every operation that
        // writes whole words (full, complement, minus, union) must mask the
        // final partial word, or phantom edges beyond `m` leak into edge
        // lists. Exercise m straddling each side of the word boundaries.
        for m in [1, 63, 64, 65, 127, 128, 129, 6400, 6401] {
            let g = path_graph(m);
            let full = EdgeSubset::full(&g);
            assert_eq!(full.len(), m, "m = {m}");
            assert!(full.contains(EdgeId((m - 1) as u32)));

            let empty = full.minus(&g, &full);
            assert!(empty.is_empty(), "m = {m}");

            // complement of empty regenerates exactly 0..m, ascending.
            let all = empty.complement(&g);
            assert_eq!(all.len(), m, "m = {m}");
            assert!(all.edges().windows(2).all(|w| w[0] < w[1]));
            assert_eq!(all.edges().last().copied(), Some(EdgeId((m - 1) as u32)));

            // Even/odd halves partition the full set.
            let evens = EdgeSubset::from_edges(&g, (0..m as u32).step_by(2).map(EdgeId));
            let odds = evens.complement(&g);
            assert_eq!(evens.len() + odds.len(), m, "m = {m}");
            let rejoined = evens.union(&g, &odds);
            assert_eq!(rejoined.len(), m, "m = {m}");
            assert!(evens.minus(&g, &rejoined).is_empty());

            // The boundary edge itself lands in the right half.
            let last = EdgeId((m - 1) as u32);
            assert_eq!(evens.contains(last), (m - 1) % 2 == 0, "m = {m}");
            assert_eq!(odds.contains(last), (m - 1) % 2 == 1, "m = {m}");
        }
    }
}
