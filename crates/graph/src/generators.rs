//! Graph generators: the paper's evaluation workloads plus named families.
//!
//! The ICPP'06 evaluation uses two random models:
//!
//! * **`G(n, m)`** — `n = 36` nodes and `m = n^(1+d)` edges for a *dense
//!   ratio* `d`, sampled uniformly among all `C(n,2)`-choose-`m` edge sets
//!   ([`gnm`]).
//! * **random `r`-regular graphs** — the paper uses Meringer's GenReg; we
//!   substitute a circulant seed randomized by double-edge swaps
//!   ([`random_regular`]), the standard MCMC sampler for simple regular
//!   graphs (see DESIGN.md §3 for the substitution rationale).
//!
//! Named families (complete, cycle, Petersen, grids, circulants) support
//! tests, and [`steiner_triple_system`] produces triangle *decompositions* of
//! `K_n` — positive instances for the NP-hardness reduction machinery.

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Number of unordered node pairs.
fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Decodes a pair index `0 ≤ idx < C(n,2)` into an unordered pair `(v, u)`
/// with `v < u` (colexicographic order).
fn decode_pair(idx: usize) -> (u32, u32) {
    // u is the largest integer with C(u,2) <= idx.
    let mut u = ((1.0 + (1.0 + 8.0 * idx as f64).sqrt()) / 2.0) as usize;
    while u * (u - 1) / 2 > idx {
        u -= 1;
    }
    while (u + 1) * u / 2 <= idx {
        u += 1;
    }
    let v = idx - u * (u - 1) / 2;
    (v as u32, u as u32)
}

/// Uniform random simple graph with exactly `m` edges (the paper's random
/// traffic graph model with `m = round(n^(1+d))`).
///
/// Cost is O(m) time and memory at scale: `rand::seq::index::sample` uses
/// Floyd's algorithm once the pair count outgrows its Fisher–Yates cutoff,
/// so `gnm(100_000, 2_000_000, ..)` never materialises the ~5·10⁹-entry
/// pair table.
///
/// # Panics
/// Panics if `m > C(n, 2)`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let total = pair_count(n);
    assert!(m <= total, "requested {m} edges but K_{n} has only {total}");
    let picks = rand::seq::index::sample(rng, total, m);
    let mut g = Graph::new(n);
    for idx in picks {
        let (v, u) = decode_pair(idx);
        g.add_edge(NodeId(v), NodeId(u));
    }
    g
}

/// The paper's edge-count rule: `m = round(n^(1+d))` for dense ratio `d`,
/// clamped to `C(n,2)`.
pub fn dense_ratio_edges(n: usize, d: f64) -> usize {
    let m = (n as f64).powf(1.0 + d).round() as usize;
    m.min(pair_count(n))
}

/// Erdős–Rényi `G(n, p)` via geometric skip sampling: instead of one
/// Bernoulli draw per pair (O(n²) at any density), the gap to the next
/// present edge is drawn directly as `⌊ln(1−U) / ln(1−p)⌋`, giving
/// O(n + m) expected time. Usable at `n = 10⁵` for sparse `p`.
///
/// Note: this changed the RNG stream relative to the original per-pair
/// loop (one uniform per *edge* rather than per *pair*). `gnp` has no
/// golden-pinned instances, so no digests move.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    let p = p.clamp(0.0, 1.0);
    if n < 2 || p <= 0.0 {
        return g;
    }
    if p >= 1.0 {
        return complete(n);
    }
    let total = pair_count(n);
    let log_q = (1.0 - p).ln(); // < 0 since 0 < p < 1
    let mut idx = 0usize;
    while idx < total {
        // U in [0, 1) so 1−U in (0, 1]: the gap is finite and >= 0.
        let u = rng.gen_range(0.0f64..1.0);
        let gap = ((1.0 - u).ln() / log_q).floor();
        if gap >= (total - idx) as f64 {
            break;
        }
        idx += gap as usize;
        let (v, w) = decode_pair(idx);
        g.add_edge(NodeId(v), NodeId(w));
        idx += 1;
    }
    g
}

/// Chung–Lu expected-degree random graph: edge `{u, v}` is present with
/// probability `min(w_u · w_v / Σw, 1)`, independently. Implemented with
/// the Miller–Hagberg skip-sampling scheme — nodes are visited in
/// descending-weight order and the inner loop thins a geometric skip at
/// the current upper-bound probability — for O(n + m) expected time.
///
/// Node `i` of the returned graph keeps weight `weights[i]` regardless of
/// the internal ordering.
///
/// # Panics
/// Panics if any weight is negative or non-finite.
pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    let mut g = Graph::new(n);
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "Chung-Lu weights must be finite and non-negative"
    );
    let s: f64 = weights.iter().sum();
    if n < 2 || s <= 0.0 {
        return g;
    }
    // Descending-weight order (ties broken by node id) makes the
    // upper-bound probability monotone along the inner loop.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    let w: Vec<f64> = order.iter().map(|&i| weights[i as usize]).collect();
    for i in 0..n - 1 {
        if w[i] <= 0.0 {
            break; // all remaining weights are zero
        }
        let mut j = i + 1;
        let mut p = (w[i] * w[j] / s).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                let u = rng.gen_range(0.0f64..1.0);
                let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
                if gap >= (n - j) as f64 {
                    break;
                }
                j += gap as usize;
            }
            // Thinning: the skip over-samples at rate p >= q; accept with
            // probability q/p to land at the exact per-pair probability.
            let q = (w[i] * w[j] / s).min(1.0);
            if rng.gen_range(0.0f64..1.0) < q / p {
                g.add_edge(NodeId(order[i]), NodeId(order[j]));
            }
            p = q;
            j += 1;
        }
    }
    g
}

/// Power-law random graph: Chung–Lu with deterministic weights
/// `w_i ∝ (i+1)^(−1/(γ−1))` scaled to mean `avg_degree` — the standard
/// continuous approximation of a degree exponent `γ`.
///
/// # Panics
/// Panics unless `γ > 2` (finite mean) and `avg_degree > 0`.
pub fn power_law<R: Rng>(n: usize, gamma: f64, avg_degree: f64, rng: &mut R) -> Graph {
    assert!(
        gamma > 2.0,
        "power-law exponent must exceed 2 (got {gamma})"
    );
    assert!(
        avg_degree > 0.0 && avg_degree.is_finite(),
        "average degree must be positive"
    );
    if n == 0 {
        return Graph::new(0);
    }
    let alpha = -1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(alpha)).collect();
    let mean: f64 = weights.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for w in &mut weights {
        *w *= scale;
    }
    chung_lu(&weights, rng)
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// whenever two points are within Euclidean distance `radius`. A grid of
/// cells with side `>= radius` restricts candidate pairs to the 3×3 cell
/// neighborhood, for O(n + m) expected time.
///
/// # Panics
/// Panics unless `0 < radius` and `radius` is finite.
pub fn random_geometric<R: Rng>(n: usize, radius: f64, rng: &mut R) -> Graph {
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite"
    );
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..1.0)))
        .collect();
    // floor(1/r) cells of side 1/cells >= r; capped at n so the grid stays
    // O(n²_cells) <= O(n²)… and at least 1. For sub-1/n radii the cap keeps
    // cell side 1/n > radius, so the 3x3 scan stays sufficient.
    let cells = (((1.0 / radius) as usize).max(1)).min(n);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    for u in 0..n {
        let (x, y) = pts[u];
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
            for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                for &v in &buckets[dy * cells + dx] {
                    if (v as usize) <= u {
                        continue;
                    }
                    let (px, py) = pts[v as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        g.add_edge(NodeId::new(u), NodeId(v));
                    }
                }
            }
        }
    }
    g
}

/// Random simple `r`-regular graph: deterministic circulant seed followed by
/// `10·m` attempted double-edge swaps (each swap preserves the degree
/// sequence and simplicity).
///
/// # Panics
/// Panics unless `0 < r < n` and `n·r` is even (no `r`-regular graph exists
/// otherwise).
pub fn random_regular<R: Rng>(n: usize, r: usize, rng: &mut R) -> Graph {
    let g = circulant_regular(n, r);
    randomize_by_swaps(g, 10, rng)
}

/// Deterministic `r`-regular circulant on `n` nodes: node `i` connects to
/// `i ± 1, …, i ± ⌊r/2⌋`, plus the antipode `i + n/2` when `r` is odd.
///
/// # Panics
/// Panics unless `0 < r < n` and `n·r` is even.
pub fn circulant_regular(n: usize, r: usize) -> Graph {
    assert!(r > 0 && r < n, "need 0 < r < n (got r={r}, n={n})");
    assert!(n * r % 2 == 0, "no r-regular graph on n nodes: n*r is odd");
    let mut offsets: Vec<usize> = (1..=r / 2).collect();
    let mut g = Graph::new(n);
    if r % 2 == 1 {
        offsets.push(n / 2); // n is even here since n*r is even and r odd
    }
    for &off in &offsets {
        for i in 0..n {
            let j = (i + off) % n;
            // The antipodal offset pairs i with i+n/2 twice per sweep when
            // off == n/2; emit each such edge once.
            if off * 2 == n && i >= n / 2 {
                continue;
            }
            // Offsets larger than n/2 would duplicate smaller ones; the
            // construction keeps off <= n/2 so each (i, off) is unique.
            g.add_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    debug_assert!(g.is_regular(r), "circulant construction is r-regular");
    debug_assert!(g.is_simple());
    g
}

/// Randomizes a simple graph by degree-preserving double-edge swaps:
/// pick edges `{a,b}`, `{c,d}` with four distinct endpoints and replace them
/// by `{a,c}`, `{b,d}` when both are absent. Performs `factor · m` attempts.
pub fn randomize_by_swaps<R: Rng>(g: Graph, factor: usize, rng: &mut R) -> Graph {
    let n = g.num_nodes();
    let mut edges: Vec<(u32, u32)> = g
        .edge_list()
        .iter()
        .map(|&(u, v)| (u.0.min(v.0), u.0.max(v.0)))
        .collect();
    let m = edges.len();
    if m < 2 {
        return g;
    }
    let mut present: HashSet<(u32, u32)> = edges.iter().copied().collect();
    let attempts = factor * m;
    for _ in 0..attempts {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Randomly orient the second edge to explore both rewirings.
        let (c, d) = if rng.gen_bool(0.5) { (c, d) } else { (d, c) };
        let ends = [a, b, c, d];
        if ends[0] == ends[2] || ends[0] == ends[3] || ends[1] == ends[2] || ends[1] == ends[3] {
            continue; // shared endpoint: swap would create a loop
        }
        let e1 = (a.min(c), a.max(c));
        let e2 = (b.min(d), b.max(d));
        if present.contains(&e1) || present.contains(&e2) {
            continue; // would create a parallel edge
        }
        present.remove(&edges[i]);
        present.remove(&edges[j]);
        present.insert(e1);
        present.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
    }
    edges.shuffle(rng);
    Graph::from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            g.add_edge(NodeId(u), NodeId(v));
        }
    }
    g
}

/// Cycle `C_n` (`n ≥ 3`).
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
    }
    g
}

/// Path `P_n` with `n` nodes and `n−1` edges.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId::new(i - 1), NodeId::new(i));
    }
    g
}

/// Star `K_{1,n−1}`: hub `0`, leaves `1..n`.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId::new(i));
    }
    g
}

/// Complete bipartite graph `K_{a,b}`: left nodes `0..a`, right `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(NodeId::new(u), NodeId::new(a + v));
        }
    }
    g
}

/// The Petersen graph (10 nodes, 15 edges, 3-regular).
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5u32 {
        g.add_edge(NodeId(i), NodeId((i + 1) % 5)); // outer pentagon
        g.add_edge(NodeId(i + 5), NodeId((i + 2) % 5 + 5)); // inner pentagram
        g.add_edge(NodeId(i), NodeId(i + 5)); // spokes
    }
    g
}

/// `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut g = Graph::new(w * h);
    let id = |x: usize, y: usize| NodeId::new(y * w + x);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                g.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    g
}

/// A Steiner triple system on `n` points: a set of triples such that every
/// unordered pair of points lies in exactly one triple — equivalently, an
/// edge partition of `K_n` into triangles.
///
/// Implemented via the **Bose construction** for `n ≡ 3 (mod 6)`. Returns
/// `None` for other `n` (systems exist for `n ≡ 1 (mod 6)` too, but the
/// Skolem construction is not needed by this crate's consumers).
pub fn steiner_triple_system(n: usize) -> Option<Vec<[u32; 3]>> {
    if n % 6 != 3 {
        return None;
    }
    let q = n / 3; // odd: n = 6t + 3 => q = 2t + 1
    debug_assert_eq!(q % 2, 1);
    let half = q.div_ceil(2); // inverse of 2 modulo q
    let point = |i: usize, k: usize| (i + k * q) as u32;
    let mut triples = Vec::with_capacity(n * (n - 1) / 6);
    for i in 0..q {
        triples.push([point(i, 0), point(i, 1), point(i, 2)]);
    }
    for k in 0..3 {
        for i in 0..q {
            for j in (i + 1)..q {
                let mid = ((i + j) * half) % q;
                triples.push([point(i, k), point(j, k), point(mid, (k + 1) % 3)]);
            }
        }
    }
    Some(triples)
}

/// Validates that `triples` is a Steiner triple system on `n` points.
pub fn is_steiner_triple_system(n: usize, triples: &[[u32; 3]]) -> bool {
    if n * (n - 1) % 6 != 0 || triples.len() != n * (n - 1) / 6 {
        return false;
    }
    let mut seen = HashSet::with_capacity(n * (n - 1) / 2);
    for t in triples {
        let mut t = *t;
        t.sort_unstable();
        let [a, b, c] = t;
        if a == b || b == c || c as usize >= n {
            return false;
        }
        for pair in [(a, b), (a, c), (b, c)] {
            if !seen.insert(pair) {
                return false;
            }
        }
    }
    seen.len() == n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn decode_pair_enumerates_all_pairs() {
        let n = 7;
        let mut seen = HashSet::new();
        for idx in 0..pair_count(n) {
            let (v, u) = decode_pair(idx);
            assert!(v < u && (u as usize) < n, "idx {idx} -> ({v},{u})");
            assert!(seen.insert((v, u)));
        }
        assert_eq!(seen.len(), pair_count(n));
    }

    #[test]
    fn gnm_has_exact_edge_count_and_is_simple() {
        for seed in 0..5 {
            let g = gnm(36, 216, &mut rng(seed));
            assert_eq!(g.num_nodes(), 36);
            assert_eq!(g.num_edges(), 216);
            assert!(g.is_simple());
        }
    }

    #[test]
    fn gnm_full_density_is_complete() {
        let g = gnm(6, 15, &mut rng(0));
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_regular(5));
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_rejects_too_many_edges() {
        let _ = gnm(4, 7, &mut rng(0));
    }

    #[test]
    fn dense_ratio_matches_papers_formula() {
        // n = 36, d = 0.5 -> 36^1.5 = 216
        assert_eq!(dense_ratio_edges(36, 0.5), 216);
        // clamped at C(36,2) = 630
        assert_eq!(dense_ratio_edges(36, 2.0), 630);
    }

    #[test]
    fn gnp_extremes() {
        let g0 = gnp(10, 0.0, &mut rng(1));
        assert_eq!(g0.num_edges(), 0);
        let g1 = gnp(10, 1.0, &mut rng(1));
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn gnp_skip_sampling_tracks_density() {
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, &mut rng(11));
        assert!(g.is_simple());
        let expected = (pair_count(n) as f64 * p) as usize; // 1990
        let m = g.num_edges();
        assert!(
            m > expected * 8 / 10 && m < expected * 12 / 10,
            "edge count {m} far from expected {expected}"
        );
    }

    #[test]
    fn chung_lu_uniform_weights_match_gnp_density() {
        // Uniform weight w on all nodes = G(n, p) with p = w²/(n·w) = w/n.
        let n = 300;
        let w = 8.0;
        let g = chung_lu(&vec![w; n], &mut rng(3));
        assert!(g.is_simple());
        let expected = (pair_count(n) as f64 * w / n as f64) as usize; // ~1196
        let m = g.num_edges();
        assert!(
            m > expected * 7 / 10 && m < expected * 13 / 10,
            "edge count {m} far from expected {expected}"
        );
    }

    #[test]
    fn chung_lu_degenerate_inputs() {
        assert_eq!(chung_lu(&[], &mut rng(0)).num_nodes(), 0);
        assert_eq!(chung_lu(&[1.0], &mut rng(0)).num_edges(), 0);
        assert_eq!(chung_lu(&[0.0; 10], &mut rng(0)).num_edges(), 0);
        // Zero-weight nodes stay isolated.
        let mut w = vec![5.0; 20];
        w[7] = 0.0;
        let g = chung_lu(&w, &mut rng(5));
        assert_eq!(g.degree(NodeId(7)), 0);
    }

    #[test]
    fn power_law_is_skewed_and_simple() {
        let g = power_law(500, 2.5, 6.0, &mut rng(9));
        assert!(g.is_simple());
        let degs: Vec<usize> = (0..500).map(|i| g.degree(NodeId::new(i))).collect();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / 500.0;
        assert!(mean > 2.0 && mean < 12.0, "mean degree {mean}");
        assert!(max as f64 > 3.0 * mean, "hub degree {max} vs mean {mean}");
    }

    #[test]
    fn random_geometric_matches_brute_force() {
        let n = 60;
        let radius = 0.22;
        let mut r = rng(13);
        let g = random_geometric(n, radius, &mut r);
        assert!(g.is_simple());
        // Re-derive the points from the same seed: the generator draws
        // exactly 2n uniforms up front.
        let mut r2 = rng(13);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (r2.gen_range(0.0f64..1.0), r2.gen_range(0.0f64..1.0)))
            .collect();
        let have: HashSet<(u32, u32)> = g
            .edge_list()
            .iter()
            .map(|&(u, v)| (u.0.min(v.0), u.0.max(v.0)))
            .collect();
        let mut want = HashSet::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let (dx, dy) = (pts[u].0 - pts[v].0, pts[u].1 - pts[v].1);
                if dx * dx + dy * dy <= radius * radius {
                    want.insert((u as u32, v as u32));
                }
            }
        }
        assert_eq!(have, want);
    }

    #[test]
    fn random_geometric_extreme_radii() {
        // Radius covering the whole square: complete graph.
        let g = random_geometric(12, 2.0, &mut rng(1));
        assert_eq!(g.num_edges(), pair_count(12));
        // Tiny radius below 1/n: the cell-count cap must not lose pairs.
        let g = random_geometric(40, 1e-9, &mut rng(2));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn circulant_regular_even_and_odd() {
        for (n, r) in [(9, 4), (10, 3), (36, 7), (36, 8), (36, 15), (36, 16)] {
            let g = circulant_regular(n, r);
            assert!(g.is_regular(r), "n={n} r={r}");
            assert!(g.is_simple());
            assert_eq!(g.num_edges(), n * r / 2);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn circulant_rejects_odd_product() {
        let _ = circulant_regular(7, 3);
    }

    #[test]
    fn random_regular_keeps_degree_and_simplicity() {
        for (n, r) in [(36, 7), (36, 8), (36, 15), (36, 16), (20, 3)] {
            for seed in 0..3 {
                let g = random_regular(n, r, &mut rng(seed));
                assert!(g.is_regular(r), "n={n} r={r} seed={seed}");
                assert!(g.is_simple());
            }
        }
    }

    #[test]
    fn swaps_actually_change_the_graph() {
        let a = random_regular(36, 8, &mut rng(1));
        let b = random_regular(36, 8, &mut rng(2));
        let ea: HashSet<_> = a
            .edge_list()
            .iter()
            .map(|&(u, v)| (u.0.min(v.0), u.0.max(v.0)))
            .collect();
        let eb: HashSet<_> = b
            .edge_list()
            .iter()
            .map(|&(u, v)| (u.0.min(v.0), u.0.max(v.0)))
            .collect();
        assert_ne!(ea, eb, "two seeds should give different regular graphs");
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.degree(NodeId(5)), 3);
        assert!(crate::bipartite::bipartition(&g).is_some());
        // K_{n,n} is n-regular.
        assert!(complete_bipartite(4, 4).is_regular(4));
    }

    #[test]
    fn named_families_have_expected_shapes() {
        assert_eq!(complete(5).num_edges(), 10);
        assert!(cycle(6).is_regular(2));
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(star(5).degree(NodeId(0)), 4);
        let p = petersen();
        assert!(p.is_regular(3));
        assert_eq!(p.num_edges(), 15);
        assert!(p.is_simple());
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // 17
    }

    #[test]
    fn bose_sts_is_valid_for_small_orders() {
        for n in [3usize, 9, 15, 21, 27] {
            let sts = steiner_triple_system(n).unwrap();
            assert!(is_steiner_triple_system(n, &sts), "n = {n}");
        }
    }

    #[test]
    fn sts_absent_for_other_orders() {
        for n in [4usize, 6, 7, 8, 10, 12, 13] {
            assert!(steiner_triple_system(n).is_none(), "n = {n}");
        }
    }

    #[test]
    fn sts_validator_rejects_bad_systems() {
        let mut sts = steiner_triple_system(9).unwrap();
        sts[0] = sts[1]; // duplicate triple -> repeated pairs
        assert!(!is_steiner_triple_system(9, &sts));
        assert!(!is_steiner_triple_system(9, &[]));
    }
}
