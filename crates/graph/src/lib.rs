//! # grooming-graph
//!
//! Graph substrate for the SONET/WDM traffic-grooming stack.
//!
//! The traffic-grooming problem of Wang & Gu (ICPP 2006) is formulated on an
//! undirected *traffic graph*: one node per SONET ring node and one edge per
//! symmetric unitary demand pair. Every algorithm in the paper is a graph
//! algorithm, and several of the proofs lean on classical machinery (Euler
//! walks, spanning trees, maximum matchings, Vizing edge colorings). This
//! crate provides all of that machinery, built from scratch:
//!
//! * [`Graph`] — an undirected **multigraph** with stable [`NodeId`] /
//!   [`EdgeId`] handles. Multi-edges matter: the paper's algorithms add
//!   *virtual edges* that may parallel real ones.
//! * [`csr`] — a flat compressed-sparse-row adjacency snapshot, cached per
//!   graph, that the traversal-heavy inner loops run on.
//! * [`bitset`] — word-packed `u64` bitset primitives shared by edge
//!   subsets and the dense clique adjacency.
//! * [`workspace`] — reusable generation-stamped scratch buffers (visited
//!   sets, parity counters, queues) threaded through the hot paths.
//! * [`traversal`] — BFS/DFS, connected components.
//! * [`spanning`] — spanning trees and forests under several strategies
//!   (BFS, DFS, randomized Kruskal, degree-minimizing local search).
//! * [`tree`] — rooted-forest utilities: tree paths, subtree parity sums
//!   (the engine behind `SpanT_Euler`'s `E_odd` computation), and
//!   decompositions of trees into edge-disjoint paths.
//! * [`euler`] — Hierholzer Euler circuits and paths on multigraphs.
//! * [`matching`] — greedy maximal matching and Edmonds' blossom maximum
//!   matching (used by `Regular_Euler` for odd degree `r`).
//! * [`coloring`] — Misra–Gries (Δ+1) proper edge coloring, the
//!   constructive form of Vizing's theorem behind the paper's Lemma 8.
//! * [`connectivity`] — bridges, articulation points, and Stoer–Wagner
//!   global minimum cut (edge connectivity λ(G), cf. Jaeger's λ ≥ 4
//!   sufficient condition cited by the paper).
//! * [`generators`] — the evaluation's random graph models (`G(n,m)`,
//!   random `r`-regular via the pairing model) plus named families and
//!   Steiner triple systems (triangle-decomposable complete graphs, used to
//!   exercise the NP-hardness reduction).
//! * [`triangles`] — triangle enumeration and an exact
//!   edge-partition-into-triangles solver (the EPT problem from the
//!   paper's hardness proof).
//! * [`cliques`] — Bron–Kerbosch maximal clique enumeration (the engine of
//!   the "cliques first" grooming heuristic the paper proposes as future
//!   work).
//! * [`bipartite`] — bipartiteness and Hopcroft–Karp matching (fast
//!   special case + independent oracle for the blossom implementation).
//! * [`subgraph`] — edge-subset extraction with id mapping.
//! * [`topology`] — physical mesh topologies (weighted links, capacitated
//!   nodes) with deterministic Yen k-shortest-path routing, the layer-0
//!   substrate of the mesh grooming workload.
//! * [`io`] — a plain-text edge-list interchange format.
//!
//! The crate has no dependency on the SONET layer; it is a reusable
//! general-purpose graph library sized for the n ≤ a-few-thousand instances
//! that ring networks produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod bitset;
pub mod cliques;
pub mod coloring;
pub mod connectivity;
pub mod csr;
pub mod decompose;
pub mod euler;
pub mod flow;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod io;
pub mod matching;
pub mod spanning;
pub mod subgraph;
pub mod topology;
pub mod traversal;
pub mod tree;
pub mod triangles;
pub mod view;
pub mod walk;
pub mod workspace;

pub use graph::Graph;
pub use ids::{EdgeId, NodeId};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::coloring::EdgeColoring;
    pub use crate::graph::Graph;
    pub use crate::ids::{EdgeId, NodeId};
    pub use crate::matching::Matching;
    pub use crate::spanning::SpanningForest;
    pub use crate::view::EdgeSubset;
    pub use crate::walk::Walk;
}
