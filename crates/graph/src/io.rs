//! Plain-text edge-list interchange format.
//!
//! ```text
//! # optional comments
//! n m
//! u v
//! u v
//! ...
//! ```
//!
//! Used by the benchmark harness to dump instances for external inspection
//! and by tests for round-trip checks.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Errors from [`parse_edge_list`], [`parse_demand_list`], and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `n m` header line is missing or malformed.
    BadHeader(String),
    /// The format version is not one this build understands.
    UnsupportedVersion {
        /// The version token found in the header.
        found: String,
    },
    /// An edge line is malformed.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// An endpoint is out of the declared node range or is a self-loop.
    BadEndpoint {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// A demand entry carries an invalid unit count (zero or unparsable).
    BadUnits {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// The number of edge lines does not match the header.
    ///
    /// For [`parse_topology`] payloads the count covers the whole body —
    /// the `n` capacity lines plus the `m` link lines.
    EdgeCountMismatch {
        /// Edge count from the header.
        declared: usize,
        /// Edge lines actually present.
        found: usize,
    },
    /// A node-capacity line of a topology payload is malformed.
    BadCaps {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// A link line of a topology payload carries an invalid weight (zero
    /// or unparsable).
    BadWeight {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header line: {s:?}"),
            ParseError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found:?}")
            }
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content:?}")
            }
            ParseError::BadEndpoint { line, content } => {
                write!(f, "bad endpoint on line {line}: {content:?}")
            }
            ParseError::BadUnits { line, content } => {
                write!(f, "bad unit count on line {line}: {content:?}")
            }
            ParseError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, found {found}")
            }
            ParseError::BadCaps { line, content } => {
                write!(f, "bad node capacities on line {line}: {content:?}")
            }
            ParseError::BadWeight { line, content } => {
                write!(f, "bad link weight on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph to the edge-list format.
pub fn format_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 8 * g.num_edges());
    out.push_str(&format!("{} {}\n", g.num_nodes(), g.num_edges()));
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses the edge-list format. Comment lines start with `#`; blank lines
/// are ignored.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadHeader(header.into()));
    }

    let mut g = Graph::new(n);
    let mut found = 0usize;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let (u, v) = match (
            parts.next().and_then(|t| t.parse::<u32>().ok()),
            parts.next().and_then(|t| t.parse::<u32>().ok()),
            parts.next(),
        ) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(ParseError::BadEdge {
                    line: line_no,
                    content: line.into(),
                })
            }
        };
        if u as usize >= n || v as usize >= n || u == v {
            return Err(ParseError::BadEndpoint {
                line: line_no,
                content: line.into(),
            });
        }
        g.add_edge(NodeId(u), NodeId(v));
        found += 1;
    }
    if found != m {
        return Err(ParseError::EdgeCountMismatch { declared: m, found });
    }
    Ok(g)
}

// ---------------------------------------------------------------------------
// demand lists: the versioned wire format for (weighted) demand sets
// ---------------------------------------------------------------------------
//
// The grooming service ships demand sets over a newline-delimited text
// protocol; this is the instance payload it speaks. The format is
// explicitly versioned so the wire protocol can evolve without silently
// misreading old captures:
//
// ```text
// demands v1 <n> <m>
// u v          # one unit of symmetric demand between u and v
// u v units    # `units` units (weighted entry; units >= 1)
// ```
//
// `#` comments and blank lines are ignored, endpoints are 0-based and must
// be distinct and `< n`, and exactly `m` entry lines must follow the
// header. A demand set is graph-shaped (one parallel edge per unit), but
// the list is kept as raw `(u, v, units)` triples so this crate stays
// ignorant of the SONET-side `DemandSet`/`WeightedDemandSet` types — the
// caller decides whether to expand units into parallel edges.

/// The magic+version token opening a [`parse_demand_list`] payload.
pub const DEMAND_LIST_V1: &str = "demands v1";

/// A parsed (possibly weighted) demand list: `n` ring nodes and `(u, v,
/// units)` entries in input order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DemandList {
    /// Number of ring nodes.
    pub nodes: usize,
    /// `(u, v, units)` triples, `u != v`, both `< nodes`, `units >= 1`.
    pub entries: Vec<(u32, u32, u32)>,
}

impl DemandList {
    /// Total demand units (entries weighted by their unit count).
    pub fn total_units(&self) -> u64 {
        self.entries.iter().map(|&(_, _, u)| u as u64).sum()
    }
}

/// Serializes a demand list in canonical v1 form (unit entries omit the
/// trailing `1`), the inverse of [`parse_demand_list`].
pub fn format_demand_list(list: &DemandList) -> String {
    let mut out = String::with_capacity(24 + 8 * list.entries.len());
    out.push_str(&format!(
        "{DEMAND_LIST_V1} {} {}\n",
        list.nodes,
        list.entries.len()
    ));
    for &(u, v, units) in &list.entries {
        if units == 1 {
            out.push_str(&format!("{u} {v}\n"));
        } else {
            out.push_str(&format!("{u} {v} {units}\n"));
        }
    }
    out
}

/// Parses the versioned demand-list format. Malformed input — including
/// unknown versions, self-demands, out-of-range endpoints, zero units, and
/// count mismatches — returns `Err`; this function never panics.
pub fn parse_demand_list(text: &str) -> Result<DemandList, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("demands") {
        return Err(ParseError::BadHeader(header.into()));
    }
    let version = parts
        .next()
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    if version != "v1" {
        return Err(ParseError::UnsupportedVersion {
            found: version.into(),
        });
    }
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadHeader(header.into()));
    }

    let mut entries = Vec::new();
    for (line_no, line) in lines {
        let mut toks = line.split_whitespace();
        let (u, v) = match (
            toks.next().and_then(|t| t.parse::<u32>().ok()),
            toks.next().and_then(|t| t.parse::<u32>().ok()),
        ) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(ParseError::BadEdge {
                    line: line_no,
                    content: line.into(),
                })
            }
        };
        let units = match toks.next() {
            None => 1,
            Some(tok) => match tok.parse::<u32>() {
                Ok(u) if u >= 1 => u,
                _ => {
                    return Err(ParseError::BadUnits {
                        line: line_no,
                        content: line.into(),
                    })
                }
            },
        };
        if toks.next().is_some() {
            return Err(ParseError::BadEdge {
                line: line_no,
                content: line.into(),
            });
        }
        if u as usize >= n || v as usize >= n || u == v {
            return Err(ParseError::BadEndpoint {
                line: line_no,
                content: line.into(),
            });
        }
        entries.push((u, v, units));
    }
    if entries.len() != m {
        return Err(ParseError::EdgeCountMismatch {
            declared: m,
            found: entries.len(),
        });
    }
    Ok(DemandList { nodes: n, entries })
}

// ---------------------------------------------------------------------------
// topologies: the versioned wire format for physical meshes
// ---------------------------------------------------------------------------
//
// The mesh grooming workload routes demands over a physical
// [`Topology`](crate::topology::Topology) — a weighted multigraph with
// per-node grooming hardware — and topologies ride the same newline wire
// protocol demand sets do. Versioned for the same reason:
//
// ```text
// topology v1 <n> <m>
// <ports> <switch>   # n capacity lines, one per node; `*` = unlimited
// u v                # m link lines; weight omitted = 1
// u v w              # explicit weight (w >= 1)
// ```
//
// `#` comments and blank lines are ignored. Endpoints are 0-based,
// distinct, and `< n`; parallel links are allowed (it is a multigraph).
// `u32::MAX` capacities always serialize as `*`, so the canonical form is
// bytewise stable under round trips.

/// The magic+version token opening a [`parse_topology`] payload.
pub const TOPOLOGY_V1: &str = "topology v1";

use crate::topology::{NodeCaps, Topology};

/// Serializes a topology in canonical v1 form (unlimited capacities as
/// `*`, unit weights omitted), the inverse of [`parse_topology`].
pub fn format_topology(topo: &Topology) -> String {
    let g = topo.graph();
    let mut out = String::with_capacity(24 + 6 * g.num_nodes() + 8 * g.num_edges());
    out.push_str(&format!(
        "{TOPOLOGY_V1} {} {}\n",
        g.num_nodes(),
        g.num_edges()
    ));
    let cap = |c: u32| {
        if c == u32::MAX {
            "*".to_string()
        } else {
            c.to_string()
        }
    };
    for &c in topo.node_caps() {
        out.push_str(&format!(
            "{} {}\n",
            cap(c.add_drop_ports),
            cap(c.switch_capacity)
        ));
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let w = topo.weight(e);
        if w == 1 {
            out.push_str(&format!("{u} {v}\n"));
        } else {
            out.push_str(&format!("{u} {v} {w}\n"));
        }
    }
    out
}

fn parse_cap_token(tok: &str) -> Option<u32> {
    if tok == "*" {
        Some(u32::MAX)
    } else {
        tok.parse().ok()
    }
}

/// Parses the versioned topology format. Malformed input — unknown
/// versions, bad capacities, self-loop links, out-of-range endpoints,
/// zero weights, and line-count mismatches — returns `Err`; this function
/// never panics.
pub fn parse_topology(text: &str) -> Result<Topology, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("topology") {
        return Err(ParseError::BadHeader(header.into()));
    }
    let version = parts
        .next()
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    if version != "v1" {
        return Err(ParseError::UnsupportedVersion {
            found: version.into(),
        });
    }
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadHeader(header.into()));
    }

    let body: Vec<(usize, &str)> = lines.collect();
    if body.len() != n + m {
        return Err(ParseError::EdgeCountMismatch {
            declared: n + m,
            found: body.len(),
        });
    }

    let mut caps = Vec::with_capacity(n);
    for &(line_no, line) in &body[..n] {
        let mut toks = line.split_whitespace();
        match (
            toks.next().and_then(parse_cap_token),
            toks.next().and_then(parse_cap_token),
            toks.next(),
        ) {
            (Some(ports), Some(switch), None) => caps.push(NodeCaps::new(ports, switch)),
            _ => {
                return Err(ParseError::BadCaps {
                    line: line_no,
                    content: line.into(),
                })
            }
        }
    }

    let mut g = Graph::new(n);
    let mut weights = Vec::with_capacity(m);
    for &(line_no, line) in &body[n..] {
        let mut toks = line.split_whitespace();
        let (u, v) = match (
            toks.next().and_then(|t| t.parse::<u32>().ok()),
            toks.next().and_then(|t| t.parse::<u32>().ok()),
        ) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(ParseError::BadEdge {
                    line: line_no,
                    content: line.into(),
                })
            }
        };
        let w = match toks.next() {
            None => 1,
            Some(tok) => match tok.parse::<u32>() {
                Ok(w) if w >= 1 => w,
                _ => {
                    return Err(ParseError::BadWeight {
                        line: line_no,
                        content: line.into(),
                    })
                }
            },
        };
        if toks.next().is_some() {
            return Err(ParseError::BadEdge {
                line: line_no,
                content: line.into(),
            });
        }
        if u as usize >= n || v as usize >= n || u == v {
            return Err(ParseError::BadEndpoint {
                line: line_no,
                content: line.into(),
            });
        }
        g.add_edge(NodeId(u), NodeId(v));
        weights.push(w);
    }
    Ok(Topology::new(g, weights, caps))
}

/// Serializes a graph to Graphviz DOT, with an optional color class per
/// edge (`edge_color[e]` indexes a fixed palette; `usize::MAX` = default).
/// Used by the CLI to render wavelength assignments.
pub fn format_dot(g: &Graph, name: &str, edge_color: Option<&[usize]>) -> String {
    const PALETTE: [&str; 10] = [
        "#4E79A7", "#F28E2B", "#E15759", "#76B7B2", "#59A14F", "#EDC948", "#B07AA1", "#9C755F",
        "#FF9DA7", "#86BCB6",
    ];
    let mut out = String::new();
    out.push_str(&format!("graph {} {{\n", sanitize_dot_id(name)));
    out.push_str("  layout=circo;\n  node [shape=circle fontsize=10];\n");
    for v in g.nodes() {
        out.push_str(&format!("  {v};\n"));
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let attrs = match edge_color.and_then(|c| c.get(e.index())) {
            Some(&c) if c != usize::MAX => format!(
                " [color=\"{}\" penwidth=2 tooltip=\"wavelength {c}\"]",
                PALETTE[c % PALETTE.len()]
            ),
            _ => String::new(),
        };
        out.push_str(&format!("  {u} -- {v}{attrs};\n"));
    }
    out.push_str("}\n");
    out
}

fn sanitize_dot_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_ascii_digit() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

// ---------------------------------------------------------------------------
// graph6: the nauty/GenReg interchange format
// ---------------------------------------------------------------------------
//
// The paper generated its regular instances with Meringer's GenReg, whose
// ecosystem speaks graph6. Supporting the format lets users replay their
// own GenReg/nauty outputs through this library.
//
// Format (simple undirected graphs, n ≤ 258047 supported here):
//   N(n): n ≤ 62 → one byte n+63; else byte 126 followed by three bytes
//         encoding n in 18 bits (6 bits each, +63).
//   R(x): the upper-triangle bits x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, …
//         (column-major), padded with zeros to a multiple of 6, each
//         6-bit group +63.

/// Serializes a **simple** graph to graph6.
///
/// # Panics
/// Panics if the graph has parallel edges or more than 258047 nodes.
pub fn format_graph6(g: &Graph) -> String {
    assert!(g.is_simple(), "graph6 encodes simple graphs only");
    let n = g.num_nodes();
    assert!(n <= 258_047, "graph6 n-encoding limited to 258047 here");
    let mut out = String::new();
    if n <= 62 {
        out.push((n as u8 + 63) as char);
    } else {
        out.push(126 as char);
        out.push((((n >> 12) & 0x3F) as u8 + 63) as char);
        out.push((((n >> 6) & 0x3F) as u8 + 63) as char);
        out.push(((n & 0x3F) as u8 + 63) as char);
    }
    let mut bits: Vec<bool> = Vec::with_capacity(n * (n - 1) / 2);
    for j in 1..n {
        for i in 0..j {
            bits.push(g.has_edge(NodeId::new(i), NodeId::new(j)));
        }
    }
    for chunk in bits.chunks(6) {
        let mut v = 0u8;
        for (pos, &b) in chunk.iter().enumerate() {
            if b {
                v |= 1 << (5 - pos);
            }
        }
        out.push((v + 63) as char);
    }
    out
}

/// Parses a graph6 string (optionally prefixed with `>>graph6<<`).
pub fn parse_graph6(text: &str) -> Result<Graph, ParseError> {
    let text = text.trim();
    let text = text.strip_prefix(">>graph6<<").unwrap_or(text);
    let bytes = text.as_bytes();
    let bad = |msg: &str| ParseError::BadHeader(format!("graph6: {msg}"));
    if bytes.is_empty() {
        return Err(bad("empty input"));
    }
    let (n, mut pos) = if bytes[0] == 126 {
        if bytes.len() < 4 {
            return Err(bad("truncated n encoding"));
        }
        if bytes[1] == 126 {
            return Err(bad("n > 258047 not supported"));
        }
        let mut n = 0usize;
        for &b in &bytes[1..4] {
            if !(63..=126).contains(&b) {
                return Err(bad("invalid n byte"));
            }
            n = (n << 6) | (b - 63) as usize;
        }
        (n, 4usize)
    } else {
        if !(63..=126).contains(&bytes[0]) {
            return Err(bad("invalid n byte"));
        }
        ((bytes[0] - 63) as usize, 1usize)
    };
    let nbits = n * n.saturating_sub(1) / 2;
    let nbytes = nbits.div_ceil(6);
    if bytes.len() - pos != nbytes {
        return Err(bad(&format!(
            "expected {nbytes} payload bytes, found {}",
            bytes.len() - pos
        )));
    }
    let mut bits = Vec::with_capacity(nbytes * 6);
    while pos < bytes.len() {
        let b = bytes[pos];
        if !(63..=126).contains(&b) {
            return Err(bad("invalid payload byte"));
        }
        let v = b - 63;
        for shift in (0..6).rev() {
            bits.push((v >> shift) & 1 == 1);
        }
        pos += 1;
    }
    if bits[nbits..].iter().any(|&b| b) {
        return Err(bad("nonzero padding bits"));
    }
    let mut g = Graph::new(n);
    let mut idx = 0usize;
    for j in 1..n {
        for i in 0..j {
            if bits[idx] {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
            idx += 1;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_random_graph() {
        let mut r = StdRng::seed_from_u64(3);
        let g = generators::gnm(15, 40, &mut r);
        let text = format_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.edge_list(), h.edge_list());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a graph\n\n3 2\n# edges follow\n0 1\n\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new(4);
        let h = parse_edge_list(&format_edge_list(&g)).unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(parse_edge_list(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            parse_edge_list("x y\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list("3 1 9\n0 1\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_edges_rejected() {
        assert!(matches!(
            parse_edge_list("3 1\n0\n"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("3 1\n0 9\n"),
            Err(ParseError::BadEndpoint { .. })
        ));
        assert!(matches!(
            parse_edge_list("3 1\n1 1\n"),
            Err(ParseError::BadEndpoint { .. })
        ));
    }

    #[test]
    fn dot_export_has_nodes_edges_and_colors() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let plain = format_dot(&g, "ring", None);
        assert!(plain.starts_with("graph ring {"));
        assert!(plain.contains("0 -- 1;"));
        assert!(plain.contains("1 -- 2;"));
        assert_eq!(plain.matches(";\n").count(), 3 + 2 + 2); // nodes+edges+2 style lines

        let colored = format_dot(&g, "9 bad name!", Some(&[0, usize::MAX]));
        assert!(colored.starts_with("graph g_9_bad_name_ {"));
        assert!(colored.contains("wavelength 0"));
        assert!(colored.contains("1 -- 2;")); // uncolored edge stays bare
    }

    #[test]
    fn graph6_known_vectors() {
        // Canonical encodings from the nauty documentation.
        assert_eq!(format_graph6(&generators::complete(3)), "Bw");
        assert_eq!(format_graph6(&generators::complete(4)), "C~");
        assert_eq!(format_graph6(&generators::complete(5)), "D~{");
        assert_eq!(format_graph6(&generators::path(3)), "Bg");
        // And the empty graph on 5 nodes.
        assert_eq!(format_graph6(&Graph::new(5)), "D??");
    }

    #[test]
    fn graph6_decodes_known_vectors() {
        let k4 = parse_graph6("C~").unwrap();
        assert_eq!(k4.num_edges(), 6);
        assert!(k4.is_regular(3));
        let p3 = parse_graph6("Bg").unwrap();
        assert_eq!(p3.num_edges(), 2);
        let with_header = parse_graph6(">>graph6<<Bw").unwrap();
        assert_eq!(with_header.num_edges(), 3);
    }

    #[test]
    fn graph6_round_trips_random_graphs() {
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = generators::gnm(30, 120, &mut r);
            let s = format_graph6(&g);
            let h = parse_graph6(&s).unwrap();
            assert_eq!(h.num_nodes(), 30);
            assert_eq!(h.num_edges(), g.num_edges());
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                assert!(h.has_edge(u, v));
            }
        }
    }

    #[test]
    fn graph6_round_trips_large_n_encoding() {
        // n = 100 > 62 uses the 3-byte encoding.
        let g = generators::cycle(100);
        let s = format_graph6(&g);
        assert_eq!(s.as_bytes()[0], 126);
        let h = parse_graph6(&s).unwrap();
        assert_eq!(h.num_nodes(), 100);
        assert!(h.is_regular(2));
    }

    #[test]
    fn graph6_rejects_malformed_input() {
        assert!(parse_graph6("").is_err());
        assert!(parse_graph6("C").is_err()); // missing payload
        assert!(parse_graph6("C~~").is_err()); // extra payload
        assert!(parse_graph6("B\x1f").is_err()); // invalid byte
                                                 // Nonzero padding: K3 payload with a stray low bit.
        assert!(parse_graph6("Bz").is_err());
    }

    #[test]
    #[should_panic(expected = "simple graphs only")]
    fn graph6_rejects_multigraphs() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let _ = format_graph6(&g);
    }

    #[test]
    fn count_mismatch_rejected() {
        assert!(matches!(
            parse_edge_list("3 2\n0 1\n"),
            Err(ParseError::EdgeCountMismatch {
                declared: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn demand_list_round_trips_with_comments_and_weights() {
        let text = "# metro demands\ndemands v1 6 3\n0 3\n\n2 1 4\n# trailing\n5 0 1\n";
        let list = parse_demand_list(text).unwrap();
        assert_eq!(list.nodes, 6);
        assert_eq!(list.entries, vec![(0, 3, 1), (2, 1, 4), (5, 0, 1)]);
        assert_eq!(list.total_units(), 6);
        // Canonical form: unit entries drop the trailing `1`.
        let canonical = format_demand_list(&list);
        assert_eq!(canonical, "demands v1 6 3\n0 3\n2 1 4\n5 0\n");
        assert_eq!(parse_demand_list(&canonical).unwrap(), list);
    }

    #[test]
    fn demand_list_rejects_malformed_input() {
        // Every adversarial case is an Err, never a panic.
        for (case, text) in [
            ("empty", ""),
            ("not demands", "edges v1 3 1\n0 1\n"),
            ("missing version", "demands\n"),
            ("future version", "demands v2 3 1\n0 1\n"),
            ("junk version", "demands vx 3 1\n0 1\n"),
            ("missing counts", "demands v1 3\n"),
            ("extra header field", "demands v1 3 1 9\n0 1\n"),
            ("negative n", "demands v1 -3 1\n0 1\n"),
            (
                "huge n overflow",
                "demands v1 99999999999999999999 1\n0 1\n",
            ),
            ("one endpoint", "demands v1 3 1\n0\n"),
            ("non-numeric endpoint", "demands v1 3 1\n0 x\n"),
            ("four fields", "demands v1 3 1\n0 1 2 3\n"),
            ("out of range", "demands v1 3 1\n0 3\n"),
            ("self demand", "demands v1 3 1\n1 1\n"),
            ("zero units", "demands v1 3 1\n0 1 0\n"),
            ("negative units", "demands v1 3 1\n0 1 -2\n"),
            ("units overflow", "demands v1 3 1\n0 1 5000000000\n"),
            ("too few entries", "demands v1 3 2\n0 1\n"),
            ("too many entries", "demands v1 3 1\n0 1\n1 2\n"),
        ] {
            assert!(parse_demand_list(text).is_err(), "case {case:?}");
        }
        assert!(matches!(
            parse_demand_list("demands v7 2 0\n"),
            Err(ParseError::UnsupportedVersion { found }) if found == "v7"
        ));
        assert!(matches!(
            parse_demand_list("demands v1 3 1\n0 1 0\n"),
            Err(ParseError::BadUnits { line: 2, .. })
        ));
    }

    #[test]
    fn empty_demand_list_round_trips() {
        let list = DemandList {
            nodes: 4,
            entries: vec![],
        };
        let text = format_demand_list(&list);
        assert_eq!(parse_demand_list(&text).unwrap(), list);
        assert_eq!(list.total_units(), 0);
    }

    #[test]
    fn topology_round_trips_with_comments_caps_and_weights() {
        let text = "# metro core\ntopology v1 4 4\n* *\n2 1\n\n# capped node\n0 4\n* 0\n0 1\n1 2 3\n2 3\n3 0 2\n";
        let topo = parse_topology(text).unwrap();
        assert_eq!(topo.num_nodes(), 4);
        assert_eq!(topo.num_links(), 4);
        assert_eq!(topo.caps(NodeId(0)), NodeCaps::UNLIMITED);
        assert_eq!(topo.caps(NodeId(1)), NodeCaps::new(2, 1));
        assert_eq!(topo.caps(NodeId(2)), NodeCaps::new(0, 4));
        assert_eq!(topo.caps(NodeId(3)), NodeCaps::new(u32::MAX, 0));
        assert_eq!(topo.weights(), &[1, 3, 1, 2]);
        // Canonical form: `*` for unlimited, unit weights omitted.
        let canonical = format_topology(&topo);
        assert_eq!(
            canonical,
            "topology v1 4 4\n* *\n2 1\n0 4\n* 0\n0 1\n1 2 3\n2 3\n3 0 2\n"
        );
        let back = parse_topology(&canonical).unwrap();
        assert_eq!(format_topology(&back), canonical);
    }

    #[test]
    fn topology_rejects_malformed_input() {
        // Every adversarial case is an Err, never a panic.
        for (case, text) in [
            ("empty", ""),
            ("not topology", "demands v1 2 0\n* *\n* *\n"),
            ("missing version", "topology\n"),
            ("future version", "topology v2 2 0\n* *\n* *\n"),
            ("missing counts", "topology v1 2\n"),
            ("extra header field", "topology v1 2 0 7\n* *\n* *\n"),
            ("huge n overflow", "topology v1 99999999999999999999 0\n"),
            ("missing caps line", "topology v1 2 1\n* *\n0 1\n"),
            ("caps one token", "topology v1 2 0\n*\n* *\n"),
            ("caps three tokens", "topology v1 2 0\n* * *\n* *\n"),
            ("caps junk", "topology v1 2 0\n* x\n* *\n"),
            ("caps negative", "topology v1 2 0\n-1 *\n* *\n"),
            ("link one endpoint", "topology v1 2 1\n* *\n* *\n0\n"),
            ("link junk", "topology v1 2 1\n* *\n* *\n0 y\n"),
            ("link four fields", "topology v1 2 1\n* *\n* *\n0 1 2 3\n"),
            ("link out of range", "topology v1 2 1\n* *\n* *\n0 2\n"),
            ("self loop", "topology v1 2 1\n* *\n* *\n1 1\n"),
            ("zero weight", "topology v1 2 1\n* *\n* *\n0 1 0\n"),
            (
                "weight overflow",
                "topology v1 2 1\n* *\n* *\n0 1 5000000000\n",
            ),
            ("too few links", "topology v1 2 2\n* *\n* *\n0 1\n"),
            ("too many links", "topology v1 2 1\n* *\n* *\n0 1\n0 1\n"),
        ] {
            assert!(parse_topology(text).is_err(), "case {case:?}");
        }
        assert!(matches!(
            parse_topology("topology v9 2 0\n* *\n* *\n"),
            Err(ParseError::UnsupportedVersion { found }) if found == "v9"
        ));
        assert!(matches!(
            parse_topology("topology v1 2 0\n* x\n* *\n"),
            Err(ParseError::BadCaps { line: 2, .. })
        ));
        assert!(matches!(
            parse_topology("topology v1 2 1\n* *\n* *\n0 1 0\n"),
            Err(ParseError::BadWeight { line: 4, .. })
        ));
    }

    #[test]
    fn linkless_topology_round_trips() {
        let topo = parse_topology("topology v1 3 0\n* *\n1 2\n* *\n").unwrap();
        assert_eq!(topo.num_links(), 0);
        assert_eq!(format_topology(&topo), "topology v1 3 0\n* *\n1 2\n* *\n");
    }
}

#[cfg(test)]
mod demand_list_props {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// A random demand list: `n` in 2..=40, up to 60 entries, units 1..=9.
    fn arb_demand_list() -> impl Strategy<Value = DemandList> {
        (2usize..=40, 0usize..=60, any::<u64>()).prop_map(|(n, m, seed)| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let entries = (0..m)
                .map(|_| {
                    let u = rng.gen_range(0..n as u32);
                    let v = loop {
                        let v = rng.gen_range(0..n as u32);
                        if v != u {
                            break v;
                        }
                    };
                    (u, v, rng.gen_range(1..=9u32))
                })
                .collect();
            DemandList { nodes: n, entries }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn demand_list_round_trip(list in arb_demand_list()) {
            let text = format_demand_list(&list);
            let back = parse_demand_list(&text).unwrap();
            prop_assert_eq!(&back, &list);
            // Serialization is canonical: a second round trip is bytewise
            // stable.
            prop_assert_eq!(format_demand_list(&back), text);
        }

        #[test]
        fn demand_list_parse_never_panics_on_mutations(
            list in arb_demand_list(),
            flip in any::<u64>(),
        ) {
            // Corrupt one byte of a valid serialization; the parser must
            // return (Ok or Err), not panic.
            let mut bytes = format_demand_list(&list).into_bytes();
            if !bytes.is_empty() {
                let i = (flip as usize) % bytes.len();
                bytes[i] = bytes[i].wrapping_add((flip >> 32) as u8 | 1);
            }
            if let Ok(text) = String::from_utf8(bytes) {
                let _ = parse_demand_list(&text);
            }
        }
    }
}

#[cfg(test)]
mod topology_props {
    use super::*;
    use crate::topology::{NodeCaps, Topology};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// A random topology: n in 2..=24, up to 48 links (parallels allowed),
    /// weights 1..=9, capacities mixing `*` with small finite values.
    fn arb_topology() -> impl Strategy<Value = Topology> {
        (2usize..=24, 0usize..=48, any::<u64>()).prop_map(|(n, m, seed)| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            let mut weights = Vec::with_capacity(m);
            for _ in 0..m {
                let u = rng.gen_range(0..n as u32);
                let v = loop {
                    let v = rng.gen_range(0..n as u32);
                    if v != u {
                        break v;
                    }
                };
                g.add_edge(NodeId(u), NodeId(v));
                weights.push(rng.gen_range(1..=9u32));
            }
            let caps = (0..n)
                .map(|_| {
                    let pick = |rng: &mut rand::rngs::StdRng| {
                        if rng.gen_range(0..3u32) == 0 {
                            u32::MAX
                        } else {
                            rng.gen_range(0..=12)
                        }
                    };
                    NodeCaps::new(pick(&mut rng), pick(&mut rng))
                })
                .collect();
            Topology::new(g, weights, caps)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn topology_round_trip(topo in arb_topology()) {
            let text = format_topology(&topo);
            let back = parse_topology(&text).unwrap();
            prop_assert_eq!(back.num_nodes(), topo.num_nodes());
            prop_assert_eq!(back.num_links(), topo.num_links());
            prop_assert_eq!(back.weights(), topo.weights());
            prop_assert_eq!(back.node_caps(), topo.node_caps());
            for e in topo.graph().edges() {
                prop_assert_eq!(back.graph().endpoints(e), topo.graph().endpoints(e));
            }
            // Serialization is canonical: a second round trip is bytewise
            // stable.
            prop_assert_eq!(format_topology(&back), text);
        }

        #[test]
        fn topology_parse_never_panics_on_mutations(
            topo in arb_topology(),
            flip in any::<u64>(),
        ) {
            // Corrupt one byte of a valid serialization; the parser must
            // return (Ok or Err), not panic.
            let mut bytes = format_topology(&topo).into_bytes();
            if !bytes.is_empty() {
                let i = (flip as usize) % bytes.len();
                bytes[i] = bytes[i].wrapping_add((flip >> 32) as u8 | 1);
            }
            if let Ok(text) = String::from_utf8(bytes) {
                let _ = parse_topology(&text);
            }
        }
    }
}
