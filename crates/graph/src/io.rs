//! Plain-text edge-list interchange format.
//!
//! ```text
//! # optional comments
//! n m
//! u v
//! u v
//! ...
//! ```
//!
//! Used by the benchmark harness to dump instances for external inspection
//! and by tests for round-trip checks.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Errors from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `n m` header line is missing or malformed.
    BadHeader(String),
    /// An edge line is malformed.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// An endpoint is out of the declared node range or is a self-loop.
    BadEndpoint {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// The number of edge lines does not match the header.
    EdgeCountMismatch {
        /// Edge count from the header.
        declared: usize,
        /// Edge lines actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header line: {s:?}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content:?}")
            }
            ParseError::BadEndpoint { line, content } => {
                write!(f, "bad endpoint on line {line}: {content:?}")
            }
            ParseError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph to the edge-list format.
pub fn format_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 8 * g.num_edges());
    out.push_str(&format!("{} {}\n", g.num_nodes(), g.num_edges()));
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses the edge-list format. Comment lines start with `#`; blank lines
/// are ignored.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.into()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadHeader(header.into()));
    }

    let mut g = Graph::new(n);
    let mut found = 0usize;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let (u, v) = match (
            parts.next().and_then(|t| t.parse::<u32>().ok()),
            parts.next().and_then(|t| t.parse::<u32>().ok()),
            parts.next(),
        ) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(ParseError::BadEdge {
                    line: line_no,
                    content: line.into(),
                })
            }
        };
        if u as usize >= n || v as usize >= n || u == v {
            return Err(ParseError::BadEndpoint {
                line: line_no,
                content: line.into(),
            });
        }
        g.add_edge(NodeId(u), NodeId(v));
        found += 1;
    }
    if found != m {
        return Err(ParseError::EdgeCountMismatch { declared: m, found });
    }
    Ok(g)
}

/// Serializes a graph to Graphviz DOT, with an optional color class per
/// edge (`edge_color[e]` indexes a fixed palette; `usize::MAX` = default).
/// Used by the CLI to render wavelength assignments.
pub fn format_dot(g: &Graph, name: &str, edge_color: Option<&[usize]>) -> String {
    const PALETTE: [&str; 10] = [
        "#4E79A7", "#F28E2B", "#E15759", "#76B7B2", "#59A14F", "#EDC948", "#B07AA1", "#9C755F",
        "#FF9DA7", "#86BCB6",
    ];
    let mut out = String::new();
    out.push_str(&format!("graph {} {{\n", sanitize_dot_id(name)));
    out.push_str("  layout=circo;\n  node [shape=circle fontsize=10];\n");
    for v in g.nodes() {
        out.push_str(&format!("  {v};\n"));
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let attrs = match edge_color.and_then(|c| c.get(e.index())) {
            Some(&c) if c != usize::MAX => format!(
                " [color=\"{}\" penwidth=2 tooltip=\"wavelength {c}\"]",
                PALETTE[c % PALETTE.len()]
            ),
            _ => String::new(),
        };
        out.push_str(&format!("  {u} -- {v}{attrs};\n"));
    }
    out.push_str("}\n");
    out
}

fn sanitize_dot_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_ascii_digit() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

// ---------------------------------------------------------------------------
// graph6: the nauty/GenReg interchange format
// ---------------------------------------------------------------------------
//
// The paper generated its regular instances with Meringer's GenReg, whose
// ecosystem speaks graph6. Supporting the format lets users replay their
// own GenReg/nauty outputs through this library.
//
// Format (simple undirected graphs, n ≤ 258047 supported here):
//   N(n): n ≤ 62 → one byte n+63; else byte 126 followed by three bytes
//         encoding n in 18 bits (6 bits each, +63).
//   R(x): the upper-triangle bits x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, …
//         (column-major), padded with zeros to a multiple of 6, each
//         6-bit group +63.

/// Serializes a **simple** graph to graph6.
///
/// # Panics
/// Panics if the graph has parallel edges or more than 258047 nodes.
pub fn format_graph6(g: &Graph) -> String {
    assert!(g.is_simple(), "graph6 encodes simple graphs only");
    let n = g.num_nodes();
    assert!(n <= 258_047, "graph6 n-encoding limited to 258047 here");
    let mut out = String::new();
    if n <= 62 {
        out.push((n as u8 + 63) as char);
    } else {
        out.push(126 as char);
        out.push((((n >> 12) & 0x3F) as u8 + 63) as char);
        out.push((((n >> 6) & 0x3F) as u8 + 63) as char);
        out.push(((n & 0x3F) as u8 + 63) as char);
    }
    let mut bits: Vec<bool> = Vec::with_capacity(n * (n - 1) / 2);
    for j in 1..n {
        for i in 0..j {
            bits.push(g.has_edge(NodeId::new(i), NodeId::new(j)));
        }
    }
    for chunk in bits.chunks(6) {
        let mut v = 0u8;
        for (pos, &b) in chunk.iter().enumerate() {
            if b {
                v |= 1 << (5 - pos);
            }
        }
        out.push((v + 63) as char);
    }
    out
}

/// Parses a graph6 string (optionally prefixed with `>>graph6<<`).
pub fn parse_graph6(text: &str) -> Result<Graph, ParseError> {
    let text = text.trim();
    let text = text.strip_prefix(">>graph6<<").unwrap_or(text);
    let bytes = text.as_bytes();
    let bad = |msg: &str| ParseError::BadHeader(format!("graph6: {msg}"));
    if bytes.is_empty() {
        return Err(bad("empty input"));
    }
    let (n, mut pos) = if bytes[0] == 126 {
        if bytes.len() < 4 {
            return Err(bad("truncated n encoding"));
        }
        if bytes[1] == 126 {
            return Err(bad("n > 258047 not supported"));
        }
        let mut n = 0usize;
        for &b in &bytes[1..4] {
            if !(63..=126).contains(&b) {
                return Err(bad("invalid n byte"));
            }
            n = (n << 6) | (b - 63) as usize;
        }
        (n, 4usize)
    } else {
        if !(63..=126).contains(&bytes[0]) {
            return Err(bad("invalid n byte"));
        }
        ((bytes[0] - 63) as usize, 1usize)
    };
    let nbits = n * n.saturating_sub(1) / 2;
    let nbytes = nbits.div_ceil(6);
    if bytes.len() - pos != nbytes {
        return Err(bad(&format!(
            "expected {nbytes} payload bytes, found {}",
            bytes.len() - pos
        )));
    }
    let mut bits = Vec::with_capacity(nbytes * 6);
    while pos < bytes.len() {
        let b = bytes[pos];
        if !(63..=126).contains(&b) {
            return Err(bad("invalid payload byte"));
        }
        let v = b - 63;
        for shift in (0..6).rev() {
            bits.push((v >> shift) & 1 == 1);
        }
        pos += 1;
    }
    if bits[nbits..].iter().any(|&b| b) {
        return Err(bad("nonzero padding bits"));
    }
    let mut g = Graph::new(n);
    let mut idx = 0usize;
    for j in 1..n {
        for i in 0..j {
            if bits[idx] {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
            idx += 1;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_random_graph() {
        let mut r = StdRng::seed_from_u64(3);
        let g = generators::gnm(15, 40, &mut r);
        let text = format_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.edge_list(), h.edge_list());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a graph\n\n3 2\n# edges follow\n0 1\n\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new(4);
        let h = parse_edge_list(&format_edge_list(&g)).unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(parse_edge_list(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            parse_edge_list("x y\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list("3 1 9\n0 1\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_edges_rejected() {
        assert!(matches!(
            parse_edge_list("3 1\n0\n"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("3 1\n0 9\n"),
            Err(ParseError::BadEndpoint { .. })
        ));
        assert!(matches!(
            parse_edge_list("3 1\n1 1\n"),
            Err(ParseError::BadEndpoint { .. })
        ));
    }

    #[test]
    fn dot_export_has_nodes_edges_and_colors() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let plain = format_dot(&g, "ring", None);
        assert!(plain.starts_with("graph ring {"));
        assert!(plain.contains("0 -- 1;"));
        assert!(plain.contains("1 -- 2;"));
        assert_eq!(plain.matches(";\n").count(), 3 + 2 + 2); // nodes+edges+2 style lines

        let colored = format_dot(&g, "9 bad name!", Some(&[0, usize::MAX]));
        assert!(colored.starts_with("graph g_9_bad_name_ {"));
        assert!(colored.contains("wavelength 0"));
        assert!(colored.contains("1 -- 2;")); // uncolored edge stays bare
    }

    #[test]
    fn graph6_known_vectors() {
        // Canonical encodings from the nauty documentation.
        assert_eq!(format_graph6(&generators::complete(3)), "Bw");
        assert_eq!(format_graph6(&generators::complete(4)), "C~");
        assert_eq!(format_graph6(&generators::complete(5)), "D~{");
        assert_eq!(format_graph6(&generators::path(3)), "Bg");
        // And the empty graph on 5 nodes.
        assert_eq!(format_graph6(&Graph::new(5)), "D??");
    }

    #[test]
    fn graph6_decodes_known_vectors() {
        let k4 = parse_graph6("C~").unwrap();
        assert_eq!(k4.num_edges(), 6);
        assert!(k4.is_regular(3));
        let p3 = parse_graph6("Bg").unwrap();
        assert_eq!(p3.num_edges(), 2);
        let with_header = parse_graph6(">>graph6<<Bw").unwrap();
        assert_eq!(with_header.num_edges(), 3);
    }

    #[test]
    fn graph6_round_trips_random_graphs() {
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = generators::gnm(30, 120, &mut r);
            let s = format_graph6(&g);
            let h = parse_graph6(&s).unwrap();
            assert_eq!(h.num_nodes(), 30);
            assert_eq!(h.num_edges(), g.num_edges());
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                assert!(h.has_edge(u, v));
            }
        }
    }

    #[test]
    fn graph6_round_trips_large_n_encoding() {
        // n = 100 > 62 uses the 3-byte encoding.
        let g = generators::cycle(100);
        let s = format_graph6(&g);
        assert_eq!(s.as_bytes()[0], 126);
        let h = parse_graph6(&s).unwrap();
        assert_eq!(h.num_nodes(), 100);
        assert!(h.is_regular(2));
    }

    #[test]
    fn graph6_rejects_malformed_input() {
        assert!(parse_graph6("").is_err());
        assert!(parse_graph6("C").is_err()); // missing payload
        assert!(parse_graph6("C~~").is_err()); // extra payload
        assert!(parse_graph6("B\x1f").is_err()); // invalid byte
                                                 // Nonzero padding: K3 payload with a stray low bit.
        assert!(parse_graph6("Bz").is_err());
    }

    #[test]
    #[should_panic(expected = "simple graphs only")]
    fn graph6_rejects_multigraphs() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let _ = format_graph6(&g);
    }

    #[test]
    fn count_mismatch_rejected() {
        assert!(matches!(
            parse_edge_list("3 2\n0 1\n"),
            Err(ParseError::EdgeCountMismatch {
                declared: 2,
                found: 1
            })
        ));
    }
}
