//! Subgraph extraction with edge-id mapping.
//!
//! Several algorithms groom a *subset* of the demands with a sub-algorithm
//! (e.g. the clique-first heuristic packs cliques, then runs `SpanT_Euler`
//! on the leftovers). They need a standalone [`Graph`] over the chosen
//! edges plus the mapping back to parent edge ids; this module provides
//! that extraction in one audited place.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::traversal::connected_components;
use crate::view::EdgeSubset;

/// A graph built from a subset of a parent graph's edges, remembering the
/// parent edge id of every extracted edge.
#[derive(Clone, Debug)]
pub struct ExtractedSubgraph {
    /// The standalone subgraph (same node id space as the parent).
    pub graph: Graph,
    /// `parent_edge[e]` = the parent edge id of subgraph edge `e`.
    pub parent_edge: Vec<EdgeId>,
}

impl ExtractedSubgraph {
    /// Translates a subgraph edge id back to the parent graph.
    pub fn to_parent(&self, e: EdgeId) -> EdgeId {
        self.parent_edge[e.index()]
    }

    /// Translates a collection of subgraph edge ids back to the parent.
    pub fn edges_to_parent(&self, edges: &[EdgeId]) -> Vec<EdgeId> {
        edges.iter().map(|&e| self.to_parent(e)).collect()
    }
}

/// Extracts the subgraph on the given edges (node set unchanged, so parent
/// node ids remain valid).
pub fn extract(g: &Graph, edges: &[EdgeId]) -> ExtractedSubgraph {
    let mut graph = Graph::new(g.num_nodes());
    let mut parent_edge = Vec::with_capacity(edges.len());
    for &e in edges {
        let (u, v) = g.endpoints(e);
        graph.add_edge(u, v);
        parent_edge.push(e);
    }
    ExtractedSubgraph { graph, parent_edge }
}

/// Extracts the subgraph of an [`EdgeSubset`].
pub fn extract_subset(g: &Graph, subset: &EdgeSubset) -> ExtractedSubgraph {
    extract(g, subset.edges())
}

/// Extracts the subgraph of the edges *not* flagged in `used`, in ascending
/// edge-id order — the "leftover" graph of a packing heuristic, built in one
/// pass over the flag array instead of materialising the surviving id list
/// first.
///
/// # Panics
/// Panics if `used.len() != g.num_edges()`.
pub fn extract_unused(g: &Graph, used: &[bool]) -> ExtractedSubgraph {
    assert_eq!(
        used.len(),
        g.num_edges(),
        "flag array must cover every edge"
    );
    let mut graph = Graph::new(g.num_nodes());
    let mut parent_edge = Vec::new();
    for e in g.edges() {
        if !used[e.index()] {
            let (u, v) = g.endpoints(e);
            graph.add_edge(u, v);
            parent_edge.push(e);
        }
    }
    ExtractedSubgraph { graph, parent_edge }
}

/// One connected component of a parent graph, rebuilt over a *compact* node
/// id space (unlike [`ExtractedSubgraph`], which keeps the parent's full
/// node set). Both id maps are ascending, so the remapping is monotone:
/// relative order of node ids, edge ids, and CSR incident lists is exactly
/// the parent's — the property the component-sharded solver relies on for
/// bit-identical per-component runs.
#[derive(Clone, Debug)]
pub struct ComponentSubgraph {
    /// The standalone component graph over `0..nodes.len()` local nodes.
    pub graph: Graph,
    /// `nodes[v]` = the parent node id of local node `v` (ascending).
    pub nodes: Vec<NodeId>,
    /// `edges[e]` = the parent edge id of local edge `e` (ascending).
    pub edges: Vec<EdgeId>,
}

/// Splits `g` into its connected components, each as a node-remapped
/// [`ComponentSubgraph`]. Components are emitted in ascending order of
/// their smallest node id; isolated nodes become single-node, zero-edge
/// components. Total cost is O(n + m), independent of the component count
/// (the full-node-set [`extract`] would pay O(n) *per* component).
pub fn split_components(g: &Graph) -> Vec<ComponentSubgraph> {
    let comps = connected_components(g);
    let mut sizes = vec![0usize; comps.count];
    for &c in &comps.labels {
        sizes[c] += 1;
    }
    // Local id of each node: position within its component's ascending
    // node scan.
    let mut local = vec![0u32; g.num_nodes()];
    let mut cursor = vec![0u32; comps.count];
    let mut out: Vec<ComponentSubgraph> = sizes
        .iter()
        .map(|&s| ComponentSubgraph {
            graph: Graph::new(s),
            nodes: Vec::with_capacity(s),
            edges: Vec::new(),
        })
        .collect();
    for v in g.nodes() {
        let c = comps.labels[v.index()];
        local[v.index()] = cursor[c];
        cursor[c] += 1;
        out[c].nodes.push(v);
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let c = comps.labels[u.index()];
        out[c]
            .graph
            .add_edge(NodeId(local[u.index()]), NodeId(local[v.index()]));
        out[c].edges.push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ids::NodeId;

    #[test]
    fn extraction_preserves_endpoints_and_mapping() {
        let g = generators::complete(5);
        let chosen: Vec<EdgeId> = vec![EdgeId(1), EdgeId(4), EdgeId(7)];
        let sub = extract(&g, &chosen);
        assert_eq!(sub.graph.num_nodes(), 5);
        assert_eq!(sub.graph.num_edges(), 3);
        for e in sub.graph.edges() {
            let parent = sub.to_parent(e);
            assert_eq!(sub.graph.endpoints(e), g.endpoints(parent));
        }
        assert_eq!(
            sub.edges_to_parent(&[EdgeId(0), EdgeId(2)]),
            vec![EdgeId(1), EdgeId(7)]
        );
    }

    #[test]
    fn empty_extraction() {
        let g = generators::cycle(4);
        let sub = extract(&g, &[]);
        assert_eq!(sub.graph.num_edges(), 0);
        assert_eq!(sub.graph.num_nodes(), 4);
    }

    #[test]
    fn unused_extraction_matches_filtered_extract() {
        let g = generators::complete(5);
        let mut used = vec![false; g.num_edges()];
        used[1] = true;
        used[4] = true;
        let by_flags = extract_unused(&g, &used);
        let survivors: Vec<EdgeId> = g.edges().filter(|e| !used[e.index()]).collect();
        let by_list = extract(&g, &survivors);
        assert_eq!(by_flags.parent_edge, by_list.parent_edge);
        assert_eq!(by_flags.graph.num_edges(), g.num_edges() - 2);
    }

    #[test]
    fn split_components_partitions_nodes_and_edges() {
        // Two triangles plus an isolated node and a lone edge.
        let g = Graph::from_edges(9, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4), (7, 8)]);
        let comps = split_components(&g);
        assert_eq!(comps.len(), 4);
        assert_eq!(
            comps
                .iter()
                .map(|c| c.graph.num_nodes())
                .collect::<Vec<_>>(),
            vec![3, 1, 3, 2]
        );
        assert_eq!(
            comps
                .iter()
                .map(|c| c.graph.num_edges())
                .collect::<Vec<_>>(),
            vec![3, 0, 3, 1]
        );
        // Ascending, monotone maps; endpoints round-trip.
        for c in &comps {
            assert!(c.nodes.windows(2).all(|w| w[0] < w[1]));
            assert!(c.edges.windows(2).all(|w| w[0] < w[1]));
            for e in c.graph.edges() {
                let (lu, lv) = c.graph.endpoints(e);
                let (gu, gv) = g.endpoints(c.edges[e.index()]);
                assert_eq!((c.nodes[lu.index()], c.nodes[lv.index()]), (gu, gv));
            }
        }
        // Isolated node 3 forms its own edgeless component.
        assert_eq!(comps[1].nodes, vec![NodeId(3)]);
    }

    #[test]
    fn split_components_single_component_is_identity() {
        let g = generators::petersen();
        let comps = split_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].graph.num_edges(), g.num_edges());
        assert_eq!(comps[0].nodes.len(), g.num_nodes());
        for e in g.edges() {
            assert_eq!(comps[0].graph.endpoints(e), g.endpoints(e));
        }
    }

    #[test]
    fn subset_extraction_round_trips() {
        let g = generators::gnm(10, 20, &mut {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(2)
        });
        let subset = EdgeSubset::from_edges(&g, g.edges().filter(|e| e.index() % 2 == 0));
        let sub = extract_subset(&g, &subset);
        assert_eq!(sub.graph.num_edges(), subset.len());
        // Degrees in the subgraph match subset degrees in the parent.
        for v in g.nodes() {
            assert_eq!(sub.graph.degree(v), subset.degree(&g, v));
        }
        let _ = NodeId(0);
    }
}
