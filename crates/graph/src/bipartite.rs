//! Bipartiteness and Hopcroft–Karp maximum bipartite matching.
//!
//! Hubbed ring traffic (access nodes talking to a few gateway nodes) makes
//! bipartite traffic graphs common in practice. On those, Hopcroft–Karp
//! finds maximum matchings in `O(E √V)` — both a faster special case for
//! `Regular_Euler`'s matching step and an independent oracle the test
//! suite uses to cross-validate the general blossom implementation.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::matching::Matching;
use std::collections::VecDeque;

/// A 2-coloring of a bipartite graph: `side[v]` is `false`/`true` for the
/// two classes (component-by-component, lowest node gets `false`).
#[derive(Clone, Debug)]
pub struct Bipartition {
    /// The side of each node.
    pub side: Vec<bool>,
}

impl Bipartition {
    /// Nodes on the given side.
    pub fn class(&self, side: bool) -> Vec<NodeId> {
        self.side
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == side)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Returns a bipartition if `g` is bipartite, `None` otherwise (an
/// odd cycle exists).
pub fn bipartition(g: &Graph) -> Option<Bipartition> {
    let n = g.num_nodes();
    let mut side = vec![None; n];
    let mut queue = VecDeque::new();
    for root in g.nodes() {
        if side[root.index()].is_some() {
            continue;
        }
        side[root.index()] = Some(false);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            let sv = side[v.index()].unwrap();
            for &(w, _) in g.incident(v) {
                match side[w.index()] {
                    None => {
                        side[w.index()] = Some(!sv);
                        queue.push_back(w);
                    }
                    Some(sw) if sw == sv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(Bipartition {
        side: side.into_iter().map(|s| s.unwrap_or(false)).collect(),
    })
}

/// Maximum matching of a **bipartite** graph via Hopcroft–Karp.
///
/// Returns `None` if the graph is not bipartite (use
/// [`crate::matching::maximum_matching`] instead).
pub fn hopcroft_karp(g: &Graph) -> Option<Matching> {
    let bip = bipartition(g)?;
    let n = g.num_nodes();
    let left: Vec<NodeId> = bip.class(false);
    const NIL: usize = usize::MAX;
    let mut mate = vec![NIL; n];
    let mut dist = vec![usize::MAX; n];

    // BFS layering from free left vertices.
    let bfs = |mate: &[usize], dist: &mut [usize]| -> bool {
        let mut queue = VecDeque::new();
        for &u in &left {
            if mate[u.index()] == NIL {
                dist[u.index()] = 0;
                queue.push_back(u);
            } else {
                dist[u.index()] = usize::MAX;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in g.incident(u) {
                let w = mate[v.index()];
                if w == NIL {
                    found = true;
                } else if dist[w] == usize::MAX {
                    dist[w] = dist[u.index()] + 1;
                    queue.push_back(NodeId::new(w));
                }
            }
        }
        found
    };

    fn dfs(g: &Graph, u: NodeId, mate: &mut [usize], dist: &mut [usize]) -> bool {
        for i in 0..g.incident(u).len() {
            let (v, _) = g.incident(u)[i];
            let w = mate[v.index()];
            let ok = if w == usize::MAX {
                true
            } else if dist[w] == dist[u.index()] + 1 {
                dfs(g, NodeId::new(w), mate, dist)
            } else {
                false
            };
            if ok {
                mate[v.index()] = u.index();
                mate[u.index()] = v.index();
                return true;
            }
        }
        dist[u.index()] = usize::MAX;
        false
    }

    while bfs(&mate, &mut dist) {
        for &u in &left {
            if mate[u.index()] == NIL {
                let _ = dfs(g, u, &mut mate, &mut dist);
            }
        }
    }

    let mates: Vec<Option<NodeId>> = mate
        .iter()
        .map(|&m| (m != NIL).then(|| NodeId::new(m)))
        .collect();
    Some(Matching::from_mate_array(g, mates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::matching::maximum_matching;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn even_cycle_is_bipartite_odd_is_not() {
        assert!(bipartition(&generators::cycle(6)).is_some());
        assert!(bipartition(&generators::cycle(5)).is_none());
        assert!(bipartition(&generators::petersen()).is_none());
        assert!(bipartition(&generators::grid(3, 4)).is_some());
    }

    #[test]
    fn bipartition_classes_cover_all_nodes() {
        let g = generators::grid(3, 3);
        let b = bipartition(&g).unwrap();
        assert_eq!(b.class(false).len() + b.class(true).len(), 9);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert_ne!(b.side[u.index()], b.side[v.index()]);
        }
    }

    #[test]
    fn hopcroft_karp_on_grid_matches_blossom() {
        let g = generators::grid(4, 4);
        let hk = hopcroft_karp(&g).unwrap();
        hk.validate(&g).unwrap();
        assert_eq!(hk.len(), maximum_matching(&g).len());
        assert_eq!(hk.len(), 8); // perfect matching on a 4x4 grid
    }

    #[test]
    fn hopcroft_karp_rejects_non_bipartite() {
        assert!(hopcroft_karp(&generators::cycle(5)).is_none());
    }

    #[test]
    fn random_bipartite_graphs_agree_with_blossom() {
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            // Random bipartite graph: left 0..6, right 6..13.
            let mut g = Graph::new(13);
            for u in 0..6u32 {
                for v in 6..13u32 {
                    if r.gen_bool(0.35) {
                        g.add_edge(NodeId(u), NodeId(v));
                    }
                }
            }
            let hk = hopcroft_karp(&g).unwrap();
            hk.validate(&g).unwrap();
            assert!(hk.is_maximal(&g));
            assert_eq!(hk.len(), maximum_matching(&g).len(), "seed {seed}");
        }
    }

    #[test]
    fn star_matching_is_one_edge() {
        let g = generators::star(7);
        let hk = hopcroft_karp(&g).unwrap();
        assert_eq!(hk.len(), 1);
    }

    #[test]
    fn empty_graph_is_bipartite_with_empty_matching() {
        let g = Graph::new(4);
        assert!(bipartition(&g).is_some());
        let hk = hopcroft_karp(&g).unwrap();
        assert!(hk.is_empty());
    }
}
