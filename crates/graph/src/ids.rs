//! Strongly typed node and edge handles.
//!
//! Both handles are plain `u32` indices wrapped in newtypes so that node and
//! edge index spaces cannot be confused. Handles are dense: a graph with `n`
//! nodes uses node ids `0..n`, and edges are numbered in insertion order.

use std::fmt;

/// Identifier of a node in a [`crate::Graph`].
///
/// Node ids are dense indices `0..n`. In the SONET layer a `NodeId` is the
/// position of a ring node in clockwise order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`crate::Graph`].
///
/// Edge ids are dense indices `0..m` in insertion order. Because the graph
/// type is a multigraph, an edge is identified by its id, never by its
/// endpoint pair (several edges may share endpoints).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The underlying dense index as `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl EdgeId {
    /// The underlying dense index as `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an edge id from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id, NodeId(17));
    }

    #[test]
    fn edge_id_round_trips_index() {
        let id = EdgeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, EdgeId(42));
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }

    #[test]
    fn debug_formats_are_tagged() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(5)), "e5");
    }

    #[test]
    fn display_formats_are_bare() {
        assert_eq!(NodeId(3).to_string(), "3");
        assert_eq!(EdgeId(5).to_string(), "5");
    }

    #[test]
    #[should_panic(expected = "node index overflows u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
