//! Flat compressed-sparse-row adjacency snapshot.
//!
//! [`crate::graph::Graph`] stores adjacency as `Vec<Vec<(NodeId, EdgeId)>>`
//! — convenient for incremental construction, but every per-node list is its
//! own heap allocation, so the traversal-heavy inner loops of the grooming
//! pipeline (spanning forests, Euler walks, component labeling) chase a
//! pointer per visited node. [`Csr`] is the read-optimized snapshot: one
//! `offsets` array and one flat `neighbors` array, holding exactly the same
//! `(neighbor, edge)` pairs **in exactly the same per-node order** as the
//! nested adjacency, so routing an algorithm through the CSR cannot change
//! its output. The graph caches the snapshot on first use (see
//! [`crate::graph::Graph::csr`]) and invalidates it on mutation.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// Flat adjacency: `neighbors[offsets[v] .. offsets[v + 1]]` are the
/// `(neighbor, edge)` pairs of node `v`, in edge-insertion order — the same
/// order [`Graph::incident`] reports.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `n + 1` prefix offsets into `neighbors`.
    offsets: Vec<u32>,
    /// All incidences, grouped by node: `2m` entries.
    neighbors: Vec<(NodeId, EdgeId)>,
}

impl Csr {
    /// Builds the snapshot from a graph. `O(n + m)`.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut offsets = vec![0u32; n + 1];
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![(NodeId(0), EdgeId(0)); 2 * g.num_edges()];
        // Scanning edges in id order appends to each node's range in the
        // same order `add_edge` pushed into the nested adjacency.
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            neighbors[cursor[u.index()] as usize] = (v, e);
            cursor[u.index()] += 1;
            neighbors[cursor[v.index()] as usize] = (u, e);
            cursor[v.index()] += 1;
        }
        Csr { offsets, neighbors }
    }

    /// Number of nodes covered by the snapshot.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Incident `(neighbor, edge)` pairs of `v`, in insertion order.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn csr_matches_nested_adjacency_exactly() {
        let g = generators::gnm(30, 90, &mut StdRng::seed_from_u64(3));
        let csr = Csr::build(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        for v in g.nodes() {
            assert_eq!(csr.incident(v), g.incident(v), "node {v:?}");
            assert_eq!(csr.degree(v), g.degree(v));
        }
    }

    #[test]
    fn csr_handles_parallels_and_isolated_nodes() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(0));
        let csr = Csr::build(&g);
        assert_eq!(csr.incident(NodeId(0)), g.incident(NodeId(0)));
        assert_eq!(csr.incident(NodeId(1)), g.incident(NodeId(1)));
        assert!(csr.incident(NodeId(3)).is_empty());
    }

    #[test]
    fn cached_snapshot_is_rebuilt_after_mutation() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.csr().incident(NodeId(0)).len(), 1);
        g.add_edge(NodeId(0), NodeId(2));
        assert_eq!(g.csr().incident(NodeId(0)).len(), 2);
        assert_eq!(g.csr().incident(NodeId(0)), g.incident(NodeId(0)));
    }
}
