//! Proper edge coloring via the Misra–Gries constructive proof of Vizing's
//! theorem.
//!
//! Vizing: every simple graph has a proper edge coloring with at most
//! `Δ + 1` colors. The paper's Lemma 8 uses exactly this fact: color an
//! `r`-regular graph with `r + 1` colors; the largest color class is a
//! matching of size ≥ `m / (r+1) = n·r / (2(r+1))`. [`misra_gries`] is the
//! O(n·m) constructive algorithm (fans, cd-path inversions, fan rotations);
//! [`largest_color_class`] extracts the Lemma 8 matching.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// A proper edge coloring: `colors[e]` is the color (0-based) of edge `e`.
#[derive(Clone, Debug)]
pub struct EdgeColoring {
    /// Color per edge, dense `0..num_colors`.
    pub colors: Vec<usize>,
    /// Number of distinct colors used.
    pub num_colors: usize,
}

impl EdgeColoring {
    /// Edges of one color class (a matching, if the coloring is proper).
    pub fn class(&self, color: usize) -> Vec<EdgeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == color)
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }

    /// Sizes of all color classes.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_colors];
        for &c in &self.colors {
            sizes[c] += 1;
        }
        sizes
    }
}

/// Checks that adjacent edges receive different colors.
pub fn verify_proper(g: &Graph, coloring: &EdgeColoring) -> bool {
    if coloring.colors.len() != g.num_edges() {
        return false;
    }
    for v in g.nodes() {
        let mut seen = std::collections::HashSet::new();
        for &(_, e) in g.incident(v) {
            if !seen.insert(coloring.colors[e.index()]) {
                return false;
            }
        }
    }
    true
}

/// The largest color class of a proper coloring — a matching of size at
/// least `m / num_colors` (the engine of the paper's Lemma 8).
pub fn largest_color_class(coloring: &EdgeColoring) -> Vec<EdgeId> {
    let sizes = coloring.class_sizes();
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(c, _)| c)
        .unwrap_or(0);
    coloring.class(best)
}

/// Misra–Gries edge coloring with at most `Δ(G) + 1` colors.
///
/// ```
/// use grooming_graph::coloring::{misra_gries, verify_proper};
/// use grooming_graph::generators;
///
/// let g = generators::complete(6); // Δ = 5
/// let coloring = misra_gries(&g);
/// assert!(verify_proper(&g, &coloring));
/// assert!(coloring.num_colors <= 6); // Vizing: Δ + 1
/// ```
///
/// # Panics
/// Panics if `g` has parallel edges (Vizing's bound holds for simple graphs;
/// multigraphs need `Δ + μ` colors and a different algorithm).
pub fn misra_gries(g: &Graph) -> EdgeColoring {
    assert!(g.is_simple(), "Misra–Gries requires a simple graph");
    let n = g.num_nodes();
    let m = g.num_edges();
    let palette = g.max_degree() + 1;
    let mut state = Coloring {
        g,
        color: vec![usize::MAX; m],
        // used_at[v][c] = edge at v colored c, if any
        used_at: vec![vec![usize::MAX; palette]; n],
        palette,
    };
    for e in 0..m {
        state.insert_edge(e);
    }
    let used = state.color.iter().copied().max().map_or(0, |c| c + 1);
    debug_assert!(used <= palette);
    EdgeColoring {
        colors: state.color,
        num_colors: used,
    }
}

struct Coloring<'a> {
    g: &'a Graph,
    color: Vec<usize>,
    used_at: Vec<Vec<usize>>,
    palette: usize,
}

impl Coloring<'_> {
    fn is_free(&self, v: NodeId, c: usize) -> bool {
        self.used_at[v.index()][c] == usize::MAX
    }

    fn lowest_free(&self, v: NodeId) -> usize {
        (0..self.palette)
            .find(|&c| self.is_free(v, c))
            .expect("degree <= Δ guarantees a free color in a Δ+1 palette")
    }

    fn set_color(&mut self, e: usize, c: usize) {
        let (u, v) = self.g.endpoints(EdgeId::new(e));
        let old = self.color[e];
        if old != usize::MAX {
            self.used_at[u.index()][old] = usize::MAX;
            self.used_at[v.index()][old] = usize::MAX;
        }
        self.color[e] = c;
        if c != usize::MAX {
            debug_assert!(self.is_free(u, c) && self.is_free(v, c));
            self.used_at[u.index()][c] = e;
            self.used_at[v.index()][c] = e;
        }
    }

    /// Builds the maximal fan of `u` starting at `v0`: a sequence of
    /// distinct neighbors `F[0]=v0, F[1], …` such that the edge `(u, F[i+1])`
    /// is colored with a color free on `F[i]`. Returns (vertex, edge) pairs.
    fn maximal_fan(&self, u: NodeId, v0: NodeId, e0: usize) -> Vec<(NodeId, usize)> {
        let mut fan = vec![(v0, e0)];
        let mut in_fan = vec![false; self.g.num_nodes()];
        in_fan[v0.index()] = true;
        loop {
            let (last, _) = *fan.last().unwrap();
            let next = self.g.incident(u).iter().find(|&&(w, e)| {
                !in_fan[w.index()]
                    && self.color[e.index()] != usize::MAX
                    && self.is_free(last, self.color[e.index()])
            });
            match next {
                Some(&(w, e)) => {
                    in_fan[w.index()] = true;
                    fan.push((w, e.index()));
                }
                None => break,
            }
        }
        fan
    }

    /// Inverts the maximal path starting at `u` whose edges alternate colors
    /// `d, c, d, c, …` (the "cd_u path"): every `d` edge becomes `c` and
    /// vice versa. Because `c` is free on `u`, the walk is a simple path.
    fn invert_cd_path(&mut self, u: NodeId, c: usize, d: usize) {
        if c == d {
            return;
        }
        let mut path = Vec::new();
        let mut v = u;
        let mut want = d;
        loop {
            let e = self.used_at[v.index()][want];
            if e == usize::MAX {
                break;
            }
            path.push(e);
            v = self.g.other_endpoint(EdgeId::new(e), v);
            want = c + d - want;
        }
        // Clear, then reassign flipped colors (clearing first avoids
        // transient conflicts between adjacent path edges).
        let old: Vec<usize> = path.iter().map(|&e| self.color[e]).collect();
        for &e in &path {
            self.set_color(e, usize::MAX);
        }
        for (&e, &o) in path.iter().zip(&old) {
            self.set_color(e, c + d - o);
        }
    }

    /// Colors the currently uncolored edge `e0` (Misra–Gries main step).
    fn insert_edge(&mut self, e0: usize) {
        let (u, v0) = self.g.endpoints(EdgeId::new(e0));
        let fan = self.maximal_fan(u, v0, e0);
        let c = self.lowest_free(u);
        let d = self.lowest_free(fan.last().unwrap().0);
        self.invert_cd_path(u, c, d);
        // After the inversion `d` is free on `u`. Find the first fan prefix
        // that is still a fan (the inversion may have recolored one fan
        // edge) whose end vertex has `d` free; rotate it and finish with d.
        let mut w_idx = None;
        for (i, &(w, e)) in fan.iter().enumerate() {
            if i > 0 {
                let col = self.color[e];
                let (prev, _) = fan[i - 1];
                if col == usize::MAX || !self.is_free(prev, col) {
                    break; // prefix no longer a fan beyond this point
                }
            }
            if self.is_free(w, d) {
                w_idx = Some(i);
                break;
            }
        }
        let w_idx = w_idx.expect("Misra-Gries invariant: a rotatable fan prefix exists");
        // Rotate: shift each fan edge's color one step toward the front.
        for i in 0..w_idx {
            let (_, e_next) = fan[i + 1];
            let col = self.color[e_next];
            self.set_color(e_next, usize::MAX);
            self.set_color(fan[i].1, col);
        }
        debug_assert_eq!(self.color[fan[w_idx].1], usize::MAX);
        debug_assert!(self.is_free(u, d));
        self.set_color(fan[w_idx].1, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(g: &Graph) -> EdgeColoring {
        let col = misra_gries(g);
        assert!(verify_proper(g, &col), "coloring must be proper");
        assert!(
            col.num_colors <= g.max_degree() + 1,
            "Vizing bound violated: {} > {} + 1",
            col.num_colors,
            g.max_degree()
        );
        col
    }

    #[test]
    fn empty_and_single_edge() {
        let g = Graph::new(3);
        let col = check(&g);
        assert_eq!(col.num_colors, 0);
        let g = Graph::from_edges(2, &[(0, 1)]);
        let col = check(&g);
        assert_eq!(col.num_colors, 1);
    }

    #[test]
    fn path_colors_within_vizing() {
        // MG guarantees Δ+1 = 3; the path's chromatic index is 2.
        let g = generators::path(6);
        let col = check(&g);
        assert!((2..=3).contains(&col.num_colors));
    }

    #[test]
    fn odd_cycle_needs_three() {
        let g = generators::cycle(5);
        let col = check(&g);
        assert_eq!(col.num_colors, 3); // class 2 graph
    }

    #[test]
    fn even_cycle_colors_within_vizing() {
        let g = generators::cycle(6);
        let col = check(&g);
        assert!((2..=3).contains(&col.num_colors));
    }

    #[test]
    fn petersen_is_class_two() {
        let g = generators::petersen();
        let col = check(&g);
        assert_eq!(col.num_colors, 4); // Petersen's chromatic index is 4 = Δ+1
    }

    #[test]
    fn complete_graphs() {
        for n in 2..9usize {
            let g = generators::complete(n);
            let col = check(&g);
            // K_n chromatic index: n-1 if n even, n if n odd.
            let expected = if n % 2 == 0 { n - 1 } else { n };
            assert!(col.num_colors <= expected.max(g.max_degree() + 1));
            assert!(col.num_colors >= g.max_degree());
        }
    }

    #[test]
    fn random_graphs_proper_within_vizing() {
        for seed in 0..15u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = generators::gnm(25, 90, &mut r);
            check(&g);
        }
    }

    #[test]
    fn regular_graphs_proper_within_vizing() {
        for (n, r) in [(36, 7), (36, 8), (36, 15), (36, 16)] {
            let mut rng = StdRng::seed_from_u64(n as u64 + r as u64);
            let g = generators::random_regular(n, r, &mut rng);
            let col = check(&g);
            assert!(col.num_colors >= r);
        }
    }

    #[test]
    fn largest_class_realizes_lemma8_bound() {
        // Lemma 8 via coloring: an r-regular graph colored with r+1 colors
        // has a class of >= n*r/(2(r+1)) edges.
        for (n, r) in [(36, 7), (36, 15), (20, 3)] {
            let mut rng = StdRng::seed_from_u64(99);
            let g = generators::random_regular(n, r, &mut rng);
            let col = check(&g);
            let class = largest_color_class(&col);
            let bound = (n * r) as f64 / (2.0 * (r as f64 + 1.0));
            assert!(
                class.len() as f64 >= bound.floor(),
                "n={n} r={r}: class {} < {bound}",
                class.len()
            );
            // And it must be a matching.
            let mut touched = vec![false; n];
            for e in class {
                let (a, b) = g.endpoints(e);
                assert!(!touched[a.index()] && !touched[b.index()]);
                touched[a.index()] = true;
                touched[b.index()] = true;
            }
        }
    }

    #[test]
    fn class_sizes_sum_to_edge_count() {
        let g = generators::complete(7);
        let col = check(&g);
        assert_eq!(col.class_sizes().iter().sum::<usize>(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "simple")]
    fn multigraph_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let _ = misra_gries(&g);
    }
}
