//! Word-packed `u64` bitset primitives.
//!
//! The grooming pipeline manipulates dense sets over `0..n` ids constantly:
//! edge-subset membership ([`crate::view::EdgeSubset`]), residual adjacency
//! rows ([`crate::cliques::DenseAdjacency`]), touched-node bitmaps. All of
//! them share the same layout — `⌈n/64⌉` machine words, bit `i` in word
//! `i / 64` — so the bit twiddling lives here once. Free functions over
//! `&[u64]` keep the storage inline in the owning structs (no indirection,
//! no generic wrapper) while popcount-based cardinality and intersection
//! come for free from the packed layout.

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Tests bit `i`. `i` must be within `words.len() * 64`.
#[inline]
pub fn test(words: &[u64], i: usize) -> bool {
    words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
}

/// Tests bit `i`, treating out-of-range indices as unset.
#[inline]
pub fn test_checked(words: &[u64], i: usize) -> bool {
    words
        .get(i / WORD_BITS)
        .is_some_and(|w| w & (1u64 << (i % WORD_BITS)) != 0)
}

/// Sets bit `i`.
#[inline]
pub fn set(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
}

/// Clears bit `i`.
#[inline]
pub fn clear(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
}

/// Number of set bits (popcount over all words).
#[inline]
pub fn count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Number of bits set in both sets (popcount of the word-wise AND). Sets of
/// different lengths are compared over their common prefix.
#[inline]
pub fn intersection_count(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Indices of the set bits, ascending.
pub fn ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut rest = w;
        std::iter::from_fn(move || {
            if rest == 0 {
                None
            } else {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * WORD_BITS + bit)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut w = vec![0u64; words_for(130)];
        assert_eq!(w.len(), 3);
        for i in [0usize, 63, 64, 127, 129] {
            assert!(!test(&w, i));
            set(&mut w, i);
            assert!(test(&w, i));
        }
        assert_eq!(count(&w), 5);
        clear(&mut w, 64);
        assert!(!test(&w, 64));
        assert_eq!(count(&w), 4);
    }

    #[test]
    fn ones_ascending() {
        let mut w = vec![0u64; words_for(200)];
        let idx = [3usize, 64, 65, 128, 199];
        for &i in &idx {
            set(&mut w, i);
        }
        assert_eq!(ones(&w).collect::<Vec<_>>(), idx);
    }

    #[test]
    fn intersection_counts_common_bits() {
        let mut a = vec![0u64; 2];
        let mut b = vec![0u64; 2];
        for i in [1usize, 70, 100] {
            set(&mut a, i);
        }
        for i in [70usize, 100, 127] {
            set(&mut b, i);
        }
        assert_eq!(intersection_count(&a, &b), 2);
        assert_eq!(intersection_count(&a, &[]), 0);
    }

    #[test]
    fn test_checked_tolerates_out_of_range() {
        let w = vec![u64::MAX; 1];
        assert!(test_checked(&w, 63));
        assert!(!test_checked(&w, 64));
        assert!(!test_checked(&[], 0));
    }
}
