//! Classical edge decompositions of complete graphs.
//!
//! The all-to-all traffic pattern (the paper's `r = n − 1` special case,
//! studied by its refs [11, 13, 21]) admits *explicit* optimal structures:
//!
//! * odd `n` — **Walecki's theorem**: `K_n` decomposes into `(n−1)/2`
//!   edge-disjoint Hamiltonian cycles ([`walecki_cycles`]);
//! * even `n` — `K_n` decomposes into `n − 1` perfect matchings — the
//!   round-robin **1-factorization** ([`one_factorization`]).
//!
//! Each Hamiltonian cycle is a size-1 skeleton cover of its edges, so these
//! decompositions feed directly into the grooming pipeline as deterministic
//! covers with the best possible constants.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::walk::Walk;

/// Walecki's Hamiltonian decomposition of `K_n` for odd `n ≥ 3`: returns
/// `(n−1)/2` closed walks over the nodes of `g`, pairwise edge-disjoint and
/// together covering all of `E(K_n)`.
///
/// `g` must be a complete graph on `n` nodes (edges are looked up in it so
/// the returned walks carry `g`'s edge ids).
///
/// # Panics
/// Panics if `n` is even, `n < 3`, or `g` is not complete.
pub fn walecki_cycles(g: &Graph) -> Vec<Walk> {
    let n = g.num_nodes();
    assert!(n >= 3 && n % 2 == 1, "Walecki needs odd n >= 3 (got {n})");
    assert_eq!(
        g.num_edges(),
        n * (n - 1) / 2,
        "expected the complete graph K_{n}"
    );
    let m = (n - 1) / 2; // cycles to produce; finite nodes live in Z_{2m}
    let hub = NodeId::new(n - 1); // the "infinity" vertex
    let modn = (n - 1) as i64;

    let mut cycles = Vec::with_capacity(m);
    for i in 0..m as i64 {
        // Zigzag through all residues: i, i+1, i−1, i+2, i−2, …, i+m.
        let mut seq: Vec<NodeId> = Vec::with_capacity(n - 1);
        seq.push(NodeId::new(i.rem_euclid(modn) as usize));
        for t in 1..=(m as i64) {
            seq.push(NodeId::new((i + t).rem_euclid(modn) as usize));
            if t < m as i64 {
                seq.push(NodeId::new((i - t).rem_euclid(modn) as usize));
            }
        }
        debug_assert_eq!(seq.len(), n - 1);
        // Close through the hub: hub -> zigzag -> hub.
        let mut nodes = Vec::with_capacity(n + 1);
        nodes.push(hub);
        nodes.extend(seq);
        nodes.push(hub);
        let edges = nodes
            .windows(2)
            .map(|w| {
                g.find_edge(w[0], w[1])
                    .expect("complete graph has every edge")
            })
            .collect();
        cycles.push(Walk::from_parts(g, nodes, edges));
    }
    cycles
}

/// The round-robin 1-factorization of `K_n` for even `n ≥ 2`: `n − 1`
/// perfect matchings (each as a list of edge ids of `g`), pairwise disjoint
/// and covering all edges.
///
/// # Panics
/// Panics if `n` is odd or `g` is not complete.
pub fn one_factorization(g: &Graph) -> Vec<Vec<crate::ids::EdgeId>> {
    let n = g.num_nodes();
    assert!(
        n >= 2 && n % 2 == 0,
        "1-factorization needs even n (got {n})"
    );
    assert_eq!(
        g.num_edges(),
        n * (n - 1) / 2,
        "expected the complete graph K_{n}"
    );
    let modn = (n - 1) as i64;
    let hub = NodeId::new(n - 1);
    let mut rounds = Vec::with_capacity(n - 1);
    for r in 0..modn {
        let mut matching = Vec::with_capacity(n / 2);
        matching.push(
            g.find_edge(hub, NodeId::new(r as usize))
                .expect("hub edge exists"),
        );
        for j in 1..=((n - 2) / 2) as i64 {
            let a = (r + j).rem_euclid(modn) as usize;
            let b = (r - j).rem_euclid(modn) as usize;
            matching.push(g.find_edge(NodeId::new(a), NodeId::new(b)).unwrap());
        }
        rounds.push(matching);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_edge_partition(g: &Graph, pieces: &[Vec<crate::ids::EdgeId>]) {
        let mut covered = vec![false; g.num_edges()];
        for piece in pieces {
            for &e in piece {
                assert!(!covered[e.index()], "edge {e:?} covered twice");
                covered[e.index()] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c), "some edge uncovered");
    }

    #[test]
    fn walecki_small_odd_orders() {
        for n in [3usize, 5, 7, 9, 11, 15, 21] {
            let g = generators::complete(n);
            let cycles = walecki_cycles(&g);
            assert_eq!(cycles.len(), (n - 1) / 2, "K_{n}");
            for c in &cycles {
                c.validate(&g).unwrap();
                assert!(c.is_closed());
                assert_eq!(c.len(), n, "a Hamiltonian cycle has n edges");
                // Visits every node exactly once (start repeated at end).
                let mut nodes: Vec<_> = c.nodes()[..n].to_vec();
                nodes.sort_unstable();
                nodes.dedup();
                assert_eq!(nodes.len(), n);
            }
            let pieces: Vec<Vec<crate::ids::EdgeId>> =
                cycles.iter().map(|c| c.edges().to_vec()).collect();
            check_edge_partition(&g, &pieces);
        }
    }

    #[test]
    #[should_panic(expected = "odd n")]
    fn walecki_rejects_even() {
        let g = generators::complete(6);
        let _ = walecki_cycles(&g);
    }

    #[test]
    #[should_panic(expected = "complete graph")]
    fn walecki_rejects_incomplete() {
        let g = generators::cycle(5);
        let _ = walecki_cycles(&g);
    }

    #[test]
    fn one_factorization_small_even_orders() {
        for n in [2usize, 4, 6, 8, 12, 16] {
            let g = generators::complete(n);
            let rounds = one_factorization(&g);
            assert_eq!(rounds.len(), n - 1, "K_{n}");
            for round in &rounds {
                assert_eq!(round.len(), n / 2);
                // Node-disjoint.
                let mut touched = vec![false; n];
                for &e in round {
                    let (u, v) = g.endpoints(e);
                    assert!(!touched[u.index()] && !touched[v.index()]);
                    touched[u.index()] = true;
                    touched[v.index()] = true;
                }
            }
            check_edge_partition(&g, &rounds);
        }
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn one_factorization_rejects_odd() {
        let g = generators::complete(5);
        let _ = one_factorization(&g);
    }
}
