//! Reusable scratch buffers for the construction pipeline.
//!
//! The grooming heuristics are run thousands of times per sweep (portfolio
//! restarts × seeds × grooming factors), and each run used to allocate a
//! fresh visited array, parity array, BFS queue, and edge buffer per stage.
//! A [`Workspace`] owns all of those buffers once; algorithms borrow it via
//! `_in`-suffixed entry points. Ownership is always explicit: a solve
//! context (or a portfolio worker thread) owns one workspace and threads it
//! down through every `_in` call, while the convenience wrappers without the
//! `_in` suffix simply allocate a fresh workspace per call. There is no
//! hidden thread-local state, so re-entrancy is a non-issue: whoever holds
//! the `&mut Workspace` decides who borrows it next.
//!
//! The visited/parity arrays use the **generation-stamp trick**
//! ([`StampSet`] / [`StampedCounts`]): instead of clearing an `n`-sized
//! array per use, each array stores the generation number at which a slot
//! was last written, and "clearing" is a single counter bump — slots stamped
//! with an older generation read as unset/zero. A reset is `O(1)` except
//! when the buffer must grow or the 32-bit generation wraps (once every
//! ~4 × 10⁹ resets, when the array is physically zeroed). Every reset also
//! bumps a lifetime counter, surfaced by [`Workspace::scratch_resets`] for
//! instrumentation.

use crate::ids::{EdgeId, NodeId};
use std::collections::VecDeque;

/// A dense set over `0..len` with `O(1)` clearing via generation stamps.
#[derive(Clone, Debug, Default)]
pub struct StampSet {
    stamp: Vec<u32>,
    gen: u32,
    resets: u64,
}

impl StampSet {
    /// Empties the set and ensures capacity for ids `0..len`.
    pub fn reset(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
        }
        self.resets += 1;
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Lifetime reset count (instrumentation).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }

    /// `true` if `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.gen
    }
}

/// A dense `0..len → u32` map defaulting to `0`, with `O(1)` clearing via
/// generation stamps.
#[derive(Clone, Debug, Default)]
pub struct StampedCounts {
    stamp: Vec<u32>,
    val: Vec<u32>,
    gen: u32,
    resets: u64,
}

impl StampedCounts {
    /// Zeroes the map and ensures capacity for keys `0..len`.
    pub fn reset(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
            self.val.resize(len, 0);
        }
        self.resets += 1;
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Lifetime reset count (instrumentation).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Current value of key `i` (zero if never written this generation).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        if self.stamp[i] == self.gen {
            self.val[i]
        } else {
            0
        }
    }

    /// Sets key `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: u32) {
        self.stamp[i] = self.gen;
        self.val[i] = v;
    }

    /// Adds `delta` to key `i`; returns the new value.
    #[inline]
    pub fn add(&mut self, i: usize, delta: u32) -> u32 {
        let v = self.get(i) + delta;
        self.set(i, v);
        v
    }
}

/// The shared scratch arena. Fields are public so `_in` functions can borrow
/// several buffers at once (disjoint field borrows); each function resets
/// the buffers it uses on entry, so no cross-call invariants exist beyond
/// retained capacity.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Node-indexed visited set (primary traversal).
    pub visited: StampSet,
    /// Node-indexed visited set (secondary, e.g. marked nodes).
    pub visited2: StampSet,
    /// Edge-indexed used/assigned set.
    pub edge_used: StampSet,
    /// Node-indexed counters (degrees, parities, subtree sums).
    pub counts: StampedCounts,
    /// Second node-indexed counter array (e.g. anchor positions).
    pub counts2: StampedCounts,
    /// Node → component label + 1 (0 = unlabeled).
    pub comp: StampedCounts,
    /// Node → adjacency cursor (Hierholzer).
    pub cursor: StampedCounts,
    /// BFS queue.
    pub queue: VecDeque<NodeId>,
    /// DFS stack.
    pub node_stack: Vec<NodeId>,
    /// Generic node buffer (e.g. touched nodes in first-touch order).
    pub node_buf: Vec<NodeId>,
    /// Node ordering buffer (e.g. bottom-up orders).
    pub order_buf: Vec<NodeId>,
    /// Generic edge buffer.
    pub edge_buf: Vec<EdgeId>,
    /// Counting-sort bucket/offset buffer.
    pub bucket_buf: Vec<usize>,
    /// Second counting-sort buffer (cursors alongside offsets).
    pub bucket_buf2: Vec<usize>,
    /// Hierholzer walk stack: (node, edge that led here).
    pub walk_stack: Vec<(NodeId, Option<EdgeId>)>,
    /// Flat `(neighbor, edge)` pair buffer (counting-sorted adjacencies).
    pub pair_buf: Vec<(NodeId, EdgeId)>,
}

impl Workspace {
    /// A workspace with empty buffers; they grow on first use and are
    /// retained across calls.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Total generation-stamp resets across all stamped buffers — a cheap
    /// proxy for "scratch passes executed against this workspace", used by
    /// the solve layer's instrumentation counters.
    pub fn scratch_resets(&self) -> u64 {
        self.visited.resets()
            + self.visited2.resets()
            + self.edge_used.resets()
            + self.counts.resets()
            + self.counts2.resets()
            + self.comp.resets()
            + self.cursor.resets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_set_resets_in_constant_time() {
        let mut s = StampSet::default();
        s.reset(4);
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert!(s.contains(2));
        assert!(!s.contains(3));
        s.reset(4);
        assert!(!s.contains(2));
        assert!(s.insert(2));
    }

    #[test]
    fn stamp_set_grows() {
        let mut s = StampSet::default();
        s.reset(2);
        s.insert(1);
        s.reset(10);
        assert!(!s.contains(1));
        assert!(s.insert(9));
    }

    #[test]
    fn stamped_counts_default_to_zero() {
        let mut c = StampedCounts::default();
        c.reset(3);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.add(1, 2), 2);
        assert_eq!(c.add(1, 3), 5);
        c.set(0, 7);
        assert_eq!(c.get(0), 7);
        c.reset(3);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn workspace_reuses_buffers_across_calls() {
        let mut ws = Workspace::new();
        ws.edge_buf.clear();
        ws.edge_buf.extend((0..100u32).map(EdgeId));
        let cap = ws.edge_buf.capacity();
        ws.edge_buf.clear();
        assert!(ws.edge_buf.capacity() >= cap.min(100));
    }

    #[test]
    fn stamp_buffers_stay_correct_across_many_resets() {
        // The scale tier leans on O(1) generation-bump resets: a long-lived
        // workspace is reset hundreds of thousands of times per sweep. No
        // generation may ever bleed state into the next, and the backing
        // arrays must never grow past the largest requested length.
        const RESETS: usize = 100_001;
        let len = 67; // straddles a 64-slot boundary for good measure
        let mut s = StampSet::default();
        let mut c = StampedCounts::default();
        for i in 0..RESETS {
            s.reset(len);
            c.reset(len);
            let slot = i % len;
            assert!(!s.contains(slot), "stale set entry at reset {i}");
            assert!(s.insert(slot));
            assert!(s.contains(slot));
            assert!(!s.contains((slot + 1) % len));
            assert_eq!(c.get(slot), 0, "stale count at reset {i}");
            assert_eq!(c.add(slot, slot as u32 + 1), slot as u32 + 1);
            assert_eq!(c.get((slot + 1) % len), 0);
        }
        assert_eq!(s.resets(), RESETS as u64);
        assert_eq!(c.resets(), RESETS as u64);
        assert_eq!(s.stamp.len(), len);
        assert_eq!(c.val.len(), len);
    }

    #[test]
    fn scratch_resets_count_every_stamped_buffer() {
        let mut ws = Workspace::new();
        assert_eq!(ws.scratch_resets(), 0);
        ws.visited.reset(4);
        ws.counts.reset(4);
        ws.counts.reset(4);
        assert_eq!(ws.scratch_resets(), 3);
    }
}
