//! Maximum flow (Dinic) and s–t edge connectivity.
//!
//! Global edge connectivity λ(G) — the quantity behind Jaeger's λ ≥ 4
//! condition cited by the paper — equals the minimum over `t` of the s–t
//! max flow from a fixed `s` in a unit-capacity digraph built by doubling
//! every undirected edge. This module provides Dinic's algorithm and that
//! reduction, giving an independent oracle for the Stoer–Wagner
//! implementation in [`crate::connectivity`].

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// A directed flow network with integer capacities (adjacency + residual
/// arcs stored pairwise).
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    // arcs stored as (to, capacity); arc i's reverse is i ^ 1.
    arcs: Vec<(usize, i64)>,
    head: Vec<Vec<usize>>, // per node: indices into arcs
}

impl FlowNetwork {
    /// An empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `from → to` with the given capacity (reverse
    /// residual arc gets capacity 0).
    ///
    /// # Panics
    /// Panics on out-of-range nodes or negative capacity.
    pub fn add_arc(&mut self, from: usize, to: usize, capacity: i64) {
        assert!(from < self.num_nodes() && to < self.num_nodes());
        assert!(capacity >= 0, "capacities must be non-negative");
        let i = self.arcs.len();
        self.arcs.push((to, capacity));
        self.arcs.push((from, 0));
        self.head[from].push(i);
        self.head[to].push(i + 1);
    }

    /// Computes the max flow `source → sink` (Dinic), consuming residual
    /// capacities in place.
    ///
    /// # Panics
    /// Panics if `source == sink`.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.num_nodes();
        let mut total = 0i64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[source] = 0;
            let mut queue = VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                for &ai in &self.head[v] {
                    let (to, cap) = self.arcs[ai];
                    if cap > 0 && level[to] == usize::MAX {
                        level[to] = level[v] + 1;
                        queue.push_back(to);
                    }
                }
            }
            if level[sink] == usize::MAX {
                return total;
            }
            // DFS blocking flow with per-node arc cursors.
            let mut cursor = vec![0usize; n];
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &level, &mut cursor);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(
        &mut self,
        v: usize,
        sink: usize,
        limit: i64,
        level: &[usize],
        cursor: &mut [usize],
    ) -> i64 {
        if v == sink {
            return limit;
        }
        while cursor[v] < self.head[v].len() {
            let ai = self.head[v][cursor[v]];
            let (to, cap) = self.arcs[ai];
            if cap > 0 && level[to] == level[v] + 1 {
                let pushed = self.dfs(to, sink, limit.min(cap), level, cursor);
                if pushed > 0 {
                    self.arcs[ai].1 -= pushed;
                    self.arcs[ai ^ 1].1 += pushed;
                    return pushed;
                }
            }
            cursor[v] += 1;
        }
        0
    }
}

/// s–t edge connectivity of an undirected (multi)graph: each undirected
/// edge becomes two unit arcs.
pub fn st_edge_connectivity(g: &Graph, s: NodeId, t: NodeId) -> u64 {
    assert_ne!(s, t, "s and t must differ");
    let mut net = FlowNetwork::new(g.num_nodes());
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        net.add_arc(u.index(), v.index(), 1);
        net.add_arc(v.index(), u.index(), 1);
    }
    net.max_flow(s.index(), t.index()) as u64
}

/// Global edge connectivity via max flow: `min over t ≠ s of flow(s, t)`
/// for a fixed `s` (node 0). The independent oracle for Stoer–Wagner.
pub fn edge_connectivity_via_flow(g: &Graph) -> Option<u64> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    let s = NodeId(0);
    Some(
        (1..n)
            .map(|t| st_edge_connectivity(g, s, NodeId::new(t)))
            .min()
            .expect("n >= 2"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::edge_connectivity;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn textbook_flow_network() {
        // Classic CLRS example has max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 3, 12);
        net.add_arc(2, 1, 4);
        net.add_arc(2, 4, 14);
        net.add_arc(3, 2, 9);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 3, 7);
        net.add_arc(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn st_connectivity_on_named_graphs() {
        let g = generators::cycle(8);
        assert_eq!(st_edge_connectivity(&g, NodeId(0), NodeId(4)), 2);
        let k5 = generators::complete(5);
        assert_eq!(st_edge_connectivity(&k5, NodeId(0), NodeId(3)), 4);
        let p = generators::path(5);
        assert_eq!(st_edge_connectivity(&p, NodeId(0), NodeId(4)), 1);
    }

    #[test]
    fn global_connectivity_matches_stoer_wagner() {
        for seed in 0..12u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = generators::gnm(10, 22, &mut r);
            let via_flow = edge_connectivity_via_flow(&g).unwrap();
            assert_eq!(via_flow, edge_connectivity(&g), "seed {seed}");
        }
        assert_eq!(edge_connectivity_via_flow(&generators::petersen()), Some(3));
    }

    #[test]
    fn disconnected_graph_has_zero_flow_connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(edge_connectivity_via_flow(&g), Some(0));
        assert_eq!(edge_connectivity_via_flow(&Graph::new(1)), None);
    }

    #[test]
    fn multigraph_capacity_counts_parallels() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert_eq!(st_edge_connectivity(&g, NodeId(0), NodeId(1)), 2);
        assert_eq!(st_edge_connectivity(&g, NodeId(0), NodeId(2)), 1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_endpoints_rejected() {
        let g = generators::cycle(4);
        let _ = st_edge_connectivity(&g, NodeId(1), NodeId(1));
    }
}
