//! Edge walks: sequences of consecutive edges with no edge repeated.
//!
//! The paper's definition of a *path* is "a sequence of consecutive edges in
//! G, where no repeated edge is allowed" — nodes may repeat. [`Walk`] is that
//! object: Euler circuits, tree paths, and skeleton backbones are all walks.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use std::collections::HashSet;

/// A walk: `nodes.len() == edges.len() + 1`, with `edges[i]` joining
/// `nodes[i]` and `nodes[i+1]`, and no edge id repeated.
///
/// A walk of zero edges ("a single node") is legal — the paper explicitly
/// allows the degenerate Euler path consisting of a single node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Walk {
    /// A zero-edge walk sitting at `v`.
    pub fn singleton(v: NodeId) -> Self {
        Walk {
            nodes: vec![v],
            edges: Vec::new(),
        }
    }

    /// Builds a walk from a node sequence and edge sequence.
    ///
    /// # Panics
    /// Panics if the lengths are inconsistent or any edge does not join its
    /// surrounding node pair in `g`.
    pub fn from_parts(g: &Graph, nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Self {
        assert_eq!(
            nodes.len(),
            edges.len() + 1,
            "walk must have exactly one more node than edges"
        );
        for (i, &e) in edges.iter().enumerate() {
            let (a, b) = g.endpoints(e);
            let (x, y) = (nodes[i], nodes[i + 1]);
            assert!(
                (a, b) == (x, y) || (a, b) == (y, x),
                "edge {e:?} = ({a:?},{b:?}) does not join walk nodes ({x:?},{y:?})"
            );
        }
        Walk { nodes, edges }
    }

    /// [`Walk::from_parts`] for walks that are already correct by
    /// construction (e.g. produced by Hierholzer's algorithm): the per-edge
    /// endpoint validation runs only in debug builds.
    pub(crate) fn from_parts_trusted(g: &Graph, nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Self {
        debug_assert_eq!(nodes.len(), edges.len() + 1);
        debug_assert!(edges.iter().enumerate().all(|(i, &e)| {
            let (a, b) = g.endpoints(e);
            (a, b) == (nodes[i], nodes[i + 1]) || (b, a) == (nodes[i], nodes[i + 1])
        }));
        Walk { nodes, edges }
    }

    /// Appends edge `e` (which must be incident to the current end node).
    ///
    /// # Panics
    /// Panics if `e` is not incident to the walk's end.
    pub fn push(&mut self, g: &Graph, e: EdgeId) {
        let last = *self.nodes.last().expect("walk is never empty");
        let next = g.other_endpoint(e, last);
        self.edges.push(e);
        self.nodes.push(next);
    }

    /// First node.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the walk has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// `true` if the walk starts and ends at the same node and is nonempty.
    pub fn is_closed(&self) -> bool {
        !self.is_empty() && self.start() == self.end()
    }

    /// Node sequence (length = `len() + 1`).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edge sequence.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Reverses the walk in place.
    pub fn reverse(&mut self) {
        self.nodes.reverse();
        self.edges.reverse();
    }

    /// `true` if no node repeats (a *simple* path).
    pub fn is_simple_path(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|v| seen.insert(*v))
    }

    /// Checks walk validity against `g`: consecutive incidence and no
    /// repeated edge id.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.nodes.len() != self.edges.len() + 1 {
            return Err("node/edge length mismatch".into());
        }
        let mut used = HashSet::with_capacity(self.edges.len());
        for (i, &e) in self.edges.iter().enumerate() {
            if e.index() >= g.num_edges() {
                return Err(format!("edge {e:?} out of range"));
            }
            if !used.insert(e) {
                return Err(format!("edge {e:?} repeated in walk"));
            }
            let (a, b) = g.endpoints(e);
            let (x, y) = (self.nodes[i], self.nodes[i + 1]);
            if (a, b) != (x, y) && (a, b) != (y, x) {
                return Err(format!(
                    "edge {e:?} does not join consecutive walk nodes at position {i}"
                ));
            }
        }
        Ok(())
    }

    /// Concatenates `other` onto `self`.
    ///
    /// # Panics
    /// Panics if `other` does not start where `self` ends.
    pub fn extend(&mut self, other: Walk) {
        assert_eq!(
            self.end(),
            other.start(),
            "walks are not concatenable (end != start)"
        );
        self.edges.extend(other.edges);
        self.nodes.extend(other.nodes.into_iter().skip(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn singleton_walk_is_empty_and_valid() {
        let g = square();
        let w = Walk::singleton(NodeId(2));
        assert!(w.is_empty());
        assert!(!w.is_closed());
        assert_eq!(w.start(), w.end());
        assert!(w.validate(&g).is_ok());
        assert!(w.is_simple_path());
    }

    #[test]
    fn push_follows_incidence() {
        let g = square();
        let mut w = Walk::singleton(NodeId(0));
        w.push(&g, EdgeId(0));
        w.push(&g, EdgeId(1));
        assert_eq!(w.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(w.len(), 2);
        assert!(w.validate(&g).is_ok());
        assert!(w.is_simple_path());
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn push_rejects_non_incident_edge() {
        let g = square();
        let mut w = Walk::singleton(NodeId(0));
        w.push(&g, EdgeId(1)); // edge (1,2) not incident to 0
    }

    #[test]
    fn closed_walk_detection() {
        let g = square();
        let mut w = Walk::singleton(NodeId(0));
        for e in 0..4 {
            w.push(&g, EdgeId(e));
        }
        assert!(w.is_closed());
        assert!(!w.is_simple_path()); // start node repeats
        assert!(w.validate(&g).is_ok());
    }

    #[test]
    fn validate_catches_repeated_edge() {
        let g = square();
        let w = Walk {
            nodes: vec![NodeId(0), NodeId(1), NodeId(0)],
            edges: vec![EdgeId(0), EdgeId(0)],
        };
        assert!(w.validate(&g).unwrap_err().contains("repeated"));
    }

    #[test]
    fn validate_catches_incidence_break() {
        let g = square();
        let w = Walk {
            nodes: vec![NodeId(0), NodeId(3)],
            edges: vec![EdgeId(0)],
        };
        assert!(w.validate(&g).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let g = square();
        let w = Walk::from_parts(
            &g,
            vec![NodeId(3), NodeId(0), NodeId(1)],
            vec![EdgeId(3), EdgeId(0)],
        );
        assert_eq!(w.end(), NodeId(1));
    }

    #[test]
    fn reverse_flips_ends() {
        let g = square();
        let mut w = Walk::singleton(NodeId(0));
        w.push(&g, EdgeId(0));
        w.push(&g, EdgeId(1));
        w.reverse();
        assert_eq!(w.start(), NodeId(2));
        assert_eq!(w.end(), NodeId(0));
        assert!(w.validate(&g).is_ok());
    }

    #[test]
    fn extend_concatenates() {
        let g = square();
        let mut a = Walk::singleton(NodeId(0));
        a.push(&g, EdgeId(0));
        let mut b = Walk::singleton(NodeId(1));
        b.push(&g, EdgeId(1));
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.end(), NodeId(2));
        assert!(a.validate(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "not concatenable")]
    fn extend_rejects_mismatched_walks() {
        let g = square();
        let a = Walk::singleton(NodeId(0));
        let b = Walk::singleton(NodeId(1));
        let mut a = a;
        let _ = &g;
        a.extend(b);
    }
}
