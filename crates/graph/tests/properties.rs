//! Property-based tests for the graph substrate.
//!
//! Random instances are drawn through the crate's own generators seeded by
//! proptest-provided seeds, so shrinking narrows down to a reproducible
//! `(n, m, seed)` triple.

use grooming_graph::coloring::{largest_color_class, misra_gries, verify_proper};
use grooming_graph::connectivity::edge_connectivity;
use grooming_graph::euler::{component_euler_walks, odd_degree_nodes};
use grooming_graph::generators;
use grooming_graph::graph::Graph;
use grooming_graph::matching::{greedy_maximal, maximum_matching};
use grooming_graph::spanning::{is_valid_spanning_forest, spanning_forest, TreeStrategy};
use grooming_graph::tree::{decompose_into_paths, odd_parity_tree_edges};
use grooming_graph::view::EdgeSubset;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random `G(n, m)` with 2..=24 nodes and feasible edge count.
fn arb_gnm() -> impl Strategy<Value = Graph> {
    (2usize..=24, 0.0f64..=1.0, any::<u64>()).prop_map(|(n, frac, seed)| {
        let max_m = n * (n - 1) / 2;
        let m = ((max_m as f64) * frac).round() as usize;
        generators::gnm(n, m.min(max_m), &mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gnm_is_simple_with_exact_count(g in arb_gnm()) {
        prop_assert!(g.is_simple());
        // Handshake lemma.
        let degsum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn spanning_forests_valid_for_all_strategies(g in arb_gnm(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for s in TreeStrategy::ALL {
            let f = spanning_forest(&g, s, &mut rng);
            prop_assert!(is_valid_spanning_forest(&g, &f), "strategy {}", s);
        }
    }

    #[test]
    fn lemma4_core_parity_makes_g2_even(g in arb_gnm(), seed in any::<u64>()) {
        // The heart of SpanT_Euler: mark odd-degree nodes of G\T, compute
        // E_odd via subtree parity; then G'' = E_odd ∪ (E\T) must have all
        // degrees even (Lemma 4's induction engine).
        let mut rng = StdRng::seed_from_u64(seed);
        let forest = spanning_forest(&g, TreeStrategy::RandomKruskal, &mut rng);
        let tree_set = EdgeSubset::from_edges(&g, forest.edges.iter().copied());
        let non_tree = tree_set.complement(&g);
        let marked_nodes = odd_degree_nodes(&g, &non_tree);
        let mut marked = vec![false; g.num_nodes()];
        for v in marked_nodes {
            marked[v.index()] = true;
        }
        let e_odd = odd_parity_tree_edges(&g, &forest, &marked);
        let g2 = EdgeSubset::from_edges(
            &g,
            e_odd.into_iter().chain(non_tree.edges().iter().copied()),
        );
        let odd_in_g2 = odd_degree_nodes(&g, &g2);
        prop_assert!(odd_in_g2.is_empty(), "G'' has odd nodes: {:?}", odd_in_g2);
        // And therefore every component of G'' carries an Euler circuit.
        let walks = component_euler_walks(&g, &g2).unwrap();
        let total: usize = walks.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, g2.len());
        for w in &walks {
            prop_assert!(w.validate(&g).is_ok());
            prop_assert!(w.is_closed() || w.is_empty());
        }
    }

    #[test]
    fn matchings_are_valid_and_ordered(g in arb_gnm()) {
        let greedy = greedy_maximal(&g);
        let max = maximum_matching(&g);
        prop_assert!(greedy.validate(&g).is_ok());
        prop_assert!(max.validate(&g).is_ok());
        prop_assert!(greedy.is_maximal(&g));
        prop_assert!(max.is_maximal(&g));
        prop_assert!(max.len() >= greedy.len());
        // Maximal matchings are at least half of maximum.
        prop_assert!(2 * greedy.len() >= max.len());
    }

    #[test]
    fn coloring_proper_within_vizing(g in arb_gnm()) {
        let col = misra_gries(&g);
        prop_assert!(verify_proper(&g, &col));
        prop_assert!(col.num_colors <= g.max_degree() + 1);
        if g.num_edges() > 0 {
            prop_assert!(col.num_colors >= g.max_degree());
            // Largest class is a matching of >= m / (Δ+1) edges.
            let class = largest_color_class(&col);
            prop_assert!(class.len() * (g.max_degree() + 1) >= g.num_edges());
        }
    }

    #[test]
    fn tree_path_decomposition_partitions_tree(g in arb_gnm(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = spanning_forest(&g, TreeStrategy::Bfs, &mut rng);
        let paths = decompose_into_paths(&g, &f);
        let mut covered = vec![false; g.num_edges()];
        for p in &paths {
            prop_assert!(p.validate(&g).is_ok());
            prop_assert!(!p.is_empty());
            for &e in p.edges() {
                prop_assert!(!covered[e.index()], "edge covered twice");
                covered[e.index()] = true;
            }
        }
        let covered_count = covered.iter().filter(|&&c| c).count();
        prop_assert_eq!(covered_count, f.edges.len());
    }

    #[test]
    fn edge_connectivity_bounded_by_min_degree(g in arb_gnm()) {
        if g.num_nodes() >= 2 && grooming_graph::traversal::is_connected(&g) {
            let lambda = edge_connectivity(&g);
            prop_assert!(lambda <= g.min_degree() as u64);
            prop_assert!(lambda >= 1);
        }
    }

    #[test]
    fn regular_generator_is_regular_and_simple(
        n_half in 2usize..=14,
        r_seed in any::<u64>(),
    ) {
        let n = n_half * 2; // even n admits every r < n
        let mut rng = StdRng::seed_from_u64(r_seed);
        use rand::Rng as _;
        let r = rng.gen_range(1..n);
        let g = generators::random_regular(n, r, &mut rng);
        prop_assert!(g.is_regular(r), "n={} r={}", n, r);
        prop_assert!(g.is_simple());
    }

    #[test]
    fn euler_walks_cover_even_multigraphs(g in arb_gnm()) {
        // Double every edge: all degrees even; component walks must be
        // closed and cover everything.
        let mut doubled = Graph::new(g.num_nodes());
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            doubled.add_edge(u, v);
            doubled.add_edge(u, v);
        }
        let s = EdgeSubset::full(&doubled);
        let walks = component_euler_walks(&doubled, &s).unwrap();
        let total: usize = walks.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, doubled.num_edges());
    }
}
