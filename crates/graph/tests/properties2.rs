//! Property tests for the second wave of graph machinery: cliques,
//! bipartite matching, subgraph extraction, and cross-validation of the
//! connectivity algorithms against brute force on tiny instances.

use grooming_graph::bipartite::{bipartition, hopcroft_karp};
use grooming_graph::cliques::{is_clique, maximal_cliques, maximum_clique};
use grooming_graph::connectivity::{bridges, edge_connectivity};
use grooming_graph::generators;
use grooming_graph::graph::Graph;
use grooming_graph::ids::{EdgeId, NodeId};
use grooming_graph::matching::maximum_matching;
use grooming_graph::subgraph::extract;
use grooming_graph::traversal::{connected_components, is_connected};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_gnm(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n, 0.0f64..=1.0, any::<u64>()).prop_map(|(n, frac, seed)| {
        let max_m = n * (n - 1) / 2;
        let m = ((max_m as f64) * frac).round() as usize;
        generators::gnm(n, m.min(max_m), &mut StdRng::seed_from_u64(seed))
    })
}

/// Brute-force edge connectivity: delete every edge subset of size up to
/// `cap` (bitmask sweep; tiny graphs only). Returns `None` if no cut of
/// size ≤ `cap` exists.
fn brute_edge_connectivity(g: &Graph, cap: usize) -> Option<u64> {
    if g.num_nodes() < 2 {
        return None;
    }
    if !is_connected(g) {
        return Some(0);
    }
    let m = g.num_edges();
    assert!(m <= 20, "brute force capped at 20 edges");
    let mut best: Option<u64> = None;
    for mask in 1u32..(1 << m) {
        let size = mask.count_ones() as usize;
        if size > cap || best.is_some_and(|b| size as u64 >= b) {
            continue;
        }
        let keep: Vec<EdgeId> = g.edges().filter(|e| mask & (1 << e.index()) == 0).collect();
        let sub = extract(g, &keep);
        if connected_components(&sub.graph).count > connected_components(g).count {
            best = Some(best.map_or(size as u64, |b| b.min(size as u64)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn maximal_cliques_cover_every_edge_and_are_maximal(g in arb_gnm(14)) {
        let cs = maximal_cliques(&g);
        for c in &cs {
            prop_assert!(is_clique(&g, c));
            for v in g.nodes() {
                if !c.contains(&v) {
                    prop_assert!(!c.iter().all(|&u| g.has_edge(u, v)));
                }
            }
        }
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(cs.iter().any(|c| c.contains(&u) && c.contains(&v)));
        }
        // The maximum clique is one of them.
        let max = maximum_clique(&g);
        if g.num_nodes() > 0 {
            prop_assert!(cs.iter().any(|c| c.len() == max.len()));
        }
    }

    #[test]
    fn hopcroft_karp_matches_blossom_on_bipartite_doubles(g in arb_gnm(12)) {
        // Make a bipartite double cover of g: (v,0)-(w,1) for each edge
        // {v,w}. Always bipartite; HK and blossom must agree.
        let n = g.num_nodes();
        let mut cover = Graph::new(2 * n);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            cover.add_edge(NodeId::new(u.index()), NodeId::new(n + v.index()));
            cover.add_edge(NodeId::new(v.index()), NodeId::new(n + u.index()));
        }
        prop_assert!(bipartition(&cover).is_some());
        let hk = hopcroft_karp(&cover).unwrap();
        hk.validate(&cover).unwrap();
        prop_assert_eq!(hk.len(), maximum_matching(&cover).len());
    }

    #[test]
    fn extraction_preserves_structure(g in arb_gnm(16), pick in any::<u64>()) {
        let chosen: Vec<EdgeId> = g
            .edges()
            .filter(|e| (pick >> (e.index() % 64)) & 1 == 1)
            .collect();
        let sub = extract(&g, &chosen);
        prop_assert_eq!(sub.graph.num_edges(), chosen.len());
        for e in sub.graph.edges() {
            prop_assert_eq!(sub.graph.endpoints(e), g.endpoints(sub.to_parent(e)));
        }
    }

    #[test]
    fn stoer_wagner_matches_brute_force_on_tiny_graphs(
        n in 3usize..=6,
        frac in 0.3f64..=1.0,
        seed in any::<u64>(),
    ) {
        let max_m = n * (n - 1) / 2;
        let m = ((max_m as f64) * frac).round() as usize;
        let g = generators::gnm(n, m.min(max_m), &mut StdRng::seed_from_u64(seed));
        let fast = edge_connectivity(&g);
        if let Some(brute) = brute_edge_connectivity(&g, 4) {
            prop_assert_eq!(fast, brute);
        } else {
            // Brute force only searched cuts up to size 4.
            prop_assert!(fast > 4 || g.num_nodes() < 2);
        }
    }

    #[test]
    fn walecki_decomposes_every_odd_complete_graph(t in 1usize..=10) {
        let n = 2 * t + 1;
        let g = generators::complete(n);
        let cycles = grooming_graph::decompose::walecki_cycles(&g);
        prop_assert_eq!(cycles.len(), t);
        let mut covered = vec![false; g.num_edges()];
        for c in &cycles {
            prop_assert!(c.validate(&g).is_ok());
            prop_assert!(c.is_closed());
            prop_assert_eq!(c.len(), n);
            for &e in c.edges() {
                prop_assert!(!covered[e.index()]);
                covered[e.index()] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|x| x));
    }

    #[test]
    fn one_factorization_covers_every_even_complete_graph(t in 1usize..=10) {
        let n = 2 * t;
        let g = generators::complete(n);
        let rounds = grooming_graph::decompose::one_factorization(&g);
        prop_assert_eq!(rounds.len(), n - 1);
        let mut covered = vec![false; g.num_edges()];
        for round in &rounds {
            prop_assert_eq!(round.len(), n / 2);
            let mut touched = vec![false; n];
            for &e in round {
                let (u, v) = g.endpoints(e);
                prop_assert!(!touched[u.index()] && !touched[v.index()]);
                touched[u.index()] = true;
                touched[v.index()] = true;
                prop_assert!(!covered[e.index()]);
                covered[e.index()] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|x| x));
    }

    #[test]
    fn bridges_are_exactly_the_1cuts(g in arb_gnm(10)) {
        let bs = bridges(&g);
        for e in g.edges() {
            let without: Vec<EdgeId> = g.edges().filter(|&x| x != e).collect();
            let sub = extract(&g, &without);
            let comps_before = connected_components(&g).count;
            let comps_after = connected_components(&sub.graph).count;
            let disconnects = comps_after > comps_before;
            prop_assert_eq!(
                bs.contains(&e),
                disconnects,
                "edge {:?} bridge classification", e
            );
        }
    }
}
