//! Load sweeps: bisecting offered load to the target blocking point.
//!
//! The classic capacity question for a grooming policy is "how many
//! Erlangs can this network carry at 1% blocking?". [`blocking_point`]
//! answers it per `(topology family, k, rearrange budget)` cell: bracket
//! the target blocking probability by doubling/halving the offered load,
//! then bisect the bracket a fixed number of times. Every evaluation is a
//! full deterministic simulation of the rescaled scenario
//! ([`Scenario::with_offered_erlangs`] keeps streams and holding times;
//! the interarrival mean absorbs the change), so the sweep itself is a
//! pure function of `(scenario, target, iterations)`.

use crate::engine::run;
use crate::report::SimReport;
use crate::scenario::Scenario;

/// The default blocking-probability target: the 1% blocking point.
pub const BLOCKING_TARGET: f64 = 0.01;

/// One converged sweep cell.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Offered load at the blocking point, in Erlangs.
    pub erlangs: f64,
    /// The measured blocking probability there (`>= target`).
    pub blocking: f64,
    /// The full report of the blocking-point run.
    pub report: SimReport,
    /// Simulations executed to converge.
    pub evaluations: usize,
}

/// Bisects offered load until `scenario`'s blocking probability crosses
/// `target`, refining the bracket `iterations` times.
///
/// Returns the cell at the *upper* end of the final bracket — the
/// smallest evaluated load whose blocking is at or above the target (the
/// same "first crossing" convention as `perf_mesh`'s iterative loading).
///
/// # Panics
/// Panics if no crossing exists within 20 doublings/halvings of the
/// scenario's own offered load (the admission limits are effectively
/// unlimited, or the scenario offers no traffic).
pub fn blocking_point(scenario: &Scenario, target: f64, iterations: usize) -> SweepCell {
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let mut evaluations = 0usize;
    let mut eval = |erlangs: f64| -> SimReport {
        evaluations += 1;
        run(&scenario.clone().with_offered_erlangs(erlangs)).report
    };

    // Bracket the crossing: `lo` blocks below target, `hi` at/above it.
    let probe = scenario.offered_erlangs();
    let first = eval(probe);
    let (mut lo, mut hi, mut hi_report) = if first.blocking_probability >= target {
        let mut hi = probe;
        let mut hi_report = first;
        let mut steps = 0;
        loop {
            let lo = hi / 2.0;
            let r = eval(lo);
            if r.blocking_probability < target {
                break (lo, hi, hi_report);
            }
            hi = lo;
            hi_report = r;
            steps += 1;
            assert!(
                steps < 20,
                "no load below the blocking target in 20 halvings"
            );
        }
    } else {
        let mut lo = probe;
        let mut steps = 0;
        loop {
            let hi = lo * 2.0;
            let r = eval(hi);
            if r.blocking_probability >= target {
                break (lo, hi, r);
            }
            lo = hi;
            steps += 1;
            assert!(steps < 20, "no blocking point within 20 doublings");
        }
    };

    for _ in 0..iterations {
        let mid = (lo + hi) / 2.0;
        let r = eval(mid);
        if r.blocking_probability >= target {
            hi = mid;
            hi_report = r;
        } else {
            lo = mid;
        }
    }

    SweepCell {
        erlangs: hi,
        blocking: hi_report.blocking_probability,
        report: hi_report,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_converges_and_is_deterministic() {
        let mut scenario = Scenario::ring(6, 3);
        scenario.max_wavelengths = 3;
        scenario.horizon = 10_000;
        let a = blocking_point(&scenario, BLOCKING_TARGET, 4);
        let b = blocking_point(&scenario, BLOCKING_TARGET, 4);
        assert!(a.blocking >= BLOCKING_TARGET);
        assert!(a.erlangs > 0.0);
        assert_eq!(a.erlangs, b.erlangs);
        assert_eq!(a.report, b.report);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
