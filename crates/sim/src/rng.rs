//! Per-stream RNG derivation: the splitmix64 domain-separation discipline.
//!
//! Each demand stream owns an independent RNG whose seed is a pure
//! function of `(master_seed, stream_id)` — the same discipline as
//! `grooming::portfolio::attempt_seed` (keyed by algorithm identity, not
//! portfolio position) and `grooming_service`'s `item_seed` (keyed by
//! content digest, not queue position). Deriving from the stream's stable
//! *identity* rather than its registration index is what makes simulation
//! traces invariant under event-source registration order: permuting the
//! stream list permutes nothing but heap insertion order, which the
//! `(time, sequence)` total order already ignores.

/// Domain-separation constant for simulator demand streams.
///
/// Distinct from the portfolio attempt domain (`0xD1B5_4A32_D192_ED03`)
/// and the service item domain (`0x7E46_A12B_90C3_55D8`), so a stream
/// seed can never collide with either derivation chain on the same
/// master.
pub const STREAM_DOMAIN: u64 = 0x9C2F_8E15_6B3A_D741;

/// The RNG seed for demand stream `stream` under `master`.
///
/// A SplitMix64 finalizer decorrelates neighbouring stream ids, so
/// streams `7` and `8` share no low-bit structure.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut state =
        (master ^ STREAM_DOMAIN).wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rand::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_decorrelate() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Domain separation: a stream seed is never the raw master.
        assert_ne!(stream_seed(42, 0), 42);
    }

    #[test]
    fn seed_is_a_pure_function_of_identity() {
        assert_eq!(stream_seed(7, 99), stream_seed(7, 99));
    }
}
