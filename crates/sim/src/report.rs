//! The simulation's summary statistics.

use std::fmt::Write as _;

/// Aggregate results of one simulation run.
///
/// Every field here is a pure function of `(scenario, master_seed)` — no
/// wall-clock observable leaks in (epoch solve latencies live in
/// [`crate::engine::SimOutcome::latency`], *outside* the report), so
/// [`SimReport::render`] is byte-comparable across runs, `--jobs` counts,
/// and event-source registration orders.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Topology family name (`"ring"` / `"mesh"`).
    pub family: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Grooming factor.
    pub k: usize,
    /// The rearrangement budget the epochs ran under.
    pub rearrange_budget: Option<usize>,
    /// Connection requests offered.
    pub offered: u64,
    /// Requests admitted and provisioned.
    pub admitted: u64,
    /// Requests blocked (wavelength budget or link capacity).
    pub blocked: u64,
    /// Requests blocked by the mesh link-capacity check specifically.
    pub blocked_links: u64,
    /// `blocked / offered` (`0` when nothing was offered).
    pub blocking_probability: f64,
    /// Analytic offered load, `streams · holding / interarrival`.
    pub offered_erlangs: f64,
    /// Measured carried load: the time-average number of connections
    /// simultaneously in service.
    pub carried_erlangs: f64,
    /// Warm-start solves performed (admitted arrivals + departures).
    pub epochs: u64,
    /// Total SADM churn the warm repairs spent ([`grooming::solve::SolveStats::sadms_moved`]).
    pub sadms_moved: u64,
    /// Total parts the warm repairs touched.
    pub parts_repaired: u64,
    /// Wavelengths in use when the simulation drained.
    pub final_wavelengths: usize,
    /// SADM cost of the final plan.
    pub final_sadms: usize,
    /// Connections in service when the simulation drained (0 unless the
    /// horizon cut arrivals that outlived every departure — impossible,
    /// so this is a drain sanity check).
    pub final_active: usize,
    /// The most connections simultaneously in service.
    pub peak_active: usize,
    /// Virtual time at the last event.
    pub end_time: u64,
}

impl SimReport {
    /// Renders the report as deterministic text (fixed float precision,
    /// no wall-clock fields) — byte-comparable across runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "groomsim report: family={} n={} k={} budget={}",
            self.family,
            self.nodes,
            self.k,
            match self.rearrange_budget {
                Some(b) => b.to_string(),
                None => "unbounded".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "  offered {} admitted {} blocked {} (links {})  blocking {:.4}",
            self.offered,
            self.admitted,
            self.blocked,
            self.blocked_links,
            self.blocking_probability
        );
        let _ = writeln!(
            out,
            "  erlangs offered {:.3} carried {:.3}",
            self.offered_erlangs, self.carried_erlangs
        );
        let _ = writeln!(
            out,
            "  epochs {}  sadms_moved {}  parts_repaired {}",
            self.epochs, self.sadms_moved, self.parts_repaired
        );
        let _ = writeln!(
            out,
            "  final: W={} sadms={} active={} (peak {})  end_time={}",
            self.final_wavelengths,
            self.final_sadms,
            self.final_active,
            self.peak_active,
            self.end_time
        );
        out
    }

    /// SADM churn per carried Erlang (the headline rearrangement-cost
    /// density; `0` when nothing was carried).
    pub fn churn_per_erlang(&self) -> f64 {
        if self.carried_erlangs > 0.0 {
            self.sadms_moved as f64 / self.carried_erlangs
        } else {
            0.0
        }
    }
}
