//! The deterministic event queue: a virtual clock over a binary heap.
//!
//! Every event carries a *stream-derived* sequence key ([`EventSeq`]), and
//! the queue pops in the total order `(time, sequence)`. Because the
//! sequence is computed from the event's stream identity and per-stream
//! index — never from heap insertion order — the pop order is invariant
//! under the order in which event sources were registered, which is the
//! backbone of the simulator's byte-identical-trace contract (see
//! DESIGN.md §17).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use grooming_sonet::demand::DemandPair;

/// The stable tie-break key: `(stream, index, departure)`.
///
/// A stream's `index`-th arrival gets `departure = false`; the departure
/// it spawns reuses `(stream, index)` with `departure = true`, so a
/// zero-duration connection's departure sorts *immediately after* its own
/// arrival at the same virtual time — never before, and never astride
/// another stream's events at that instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventSeq {
    /// The originating demand stream's stable identity.
    pub stream: u64,
    /// The per-stream arrival counter this event belongs to.
    pub index: u64,
    /// `false` for the arrival itself, `true` for its departure.
    pub departure: bool,
}

/// What happens at an event's firing time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A connection request: `pair` asks to be provisioned for `holding`
    /// ticks (drawn when the event was scheduled, so admission decisions
    /// never perturb the stream's RNG consumption).
    Arrival {
        /// The requested demand pair.
        pair: DemandPair,
        /// The holding time in ticks (zero is legal: the connection
        /// departs in the same instant it arrives).
        holding: u64,
    },
    /// An admitted connection tears down.
    Departure {
        /// The departing demand pair.
        pair: DemandPair,
    },
}

/// One scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual firing time in ticks.
    pub time: u64,
    /// The stable tie-break key.
    pub seq: EventSeq,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    fn key(&self) -> (u64, EventSeq) {
        (self.time, self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the queue pops earliest
        // first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue: pops in `(time, sequence)` order.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event`.
    pub fn push(&mut self, event: Event) {
        self.heap.push(event);
    }

    /// Pops the earliest event (ties broken by [`EventSeq`]).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grooming_graph::NodeId;

    fn ev(time: u64, stream: u64, index: u64, departure: bool) -> Event {
        Event {
            time,
            seq: EventSeq {
                stream,
                index,
                departure,
            },
            kind: EventKind::Departure {
                pair: DemandPair::new(NodeId(0), NodeId(1)),
            },
        }
    }

    #[test]
    fn pops_in_time_then_sequence_order() {
        let mut q = EventQueue::new();
        // Push in scrambled order; pop must sort by (time, stream, index,
        // departure).
        q.push(ev(5, 2, 0, false));
        q.push(ev(3, 9, 1, true));
        q.push(ev(3, 1, 7, false));
        q.push(ev(3, 1, 7, true));
        q.push(ev(3, 1, 2, false));
        let order: Vec<(u64, u64, u64, bool)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq.stream, e.seq.index, e.seq.departure))
            .collect();
        assert_eq!(
            order,
            vec![
                (3, 1, 2, false),
                (3, 1, 7, false),
                (3, 1, 7, true),
                (3, 9, 1, true),
                (5, 2, 0, false),
            ]
        );
    }

    #[test]
    fn insertion_order_never_leaks_into_pop_order() {
        let events = [
            ev(4, 0, 0, false),
            ev(4, 0, 1, false),
            ev(4, 1, 0, false),
            ev(2, 3, 5, true),
        ];
        let mut forward = EventQueue::new();
        let mut backward = EventQueue::new();
        for e in events {
            forward.push(e);
        }
        for e in events.iter().rev() {
            backward.push(*e);
        }
        let f: Vec<Event> = std::iter::from_fn(|| forward.pop()).collect();
        let b: Vec<Event> = std::iter::from_fn(|| backward.pop()).collect();
        assert_eq!(f, b);
    }
}
