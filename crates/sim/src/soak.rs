//! The TCP soak driver: replay a recorded epoch sequence against a live
//! groomd and assert the wire transcript is byte-identical to the
//! in-process run.
//!
//! The in-process engine ([`crate::engine::run_recording`]) captures the
//! exact [`Instance::Reconfigure`] sequence it solved. This module
//! replays that sequence two ways and compares bytes:
//!
//! * [`expected_transcript`] — through an in-process
//!   [`grooming_service::Service`] via
//!   [`grooming_service::Client::solve_transcript`], the canonical
//!   response formatter;
//! * [`replay_tcp`] — over a real socket to a running groomd, one request
//!   per epoch, alternating the `RECONFIGURE` and `BATCH` wire verbs
//!   (both admit reconfigure stanzas and answer identically).
//!
//! Byte equality closes the loop: the server's framing, parsing, queueing
//! and response formatting reproduced the in-process solve exactly, for
//! every epoch of a stochastic trace. Both sides must run a service with
//! the same [`ServiceConfig`] (the content-derived item seed makes worker
//! count irrelevant, but the master seed must match).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use grooming::solve::Instance;
use grooming_service::protocol::{format_batch_request, format_reconfigure_request};
use grooming_service::{Client, Request, RequestOptions, Service, ServiceConfig};

/// What one soak replay produced.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Epochs replayed (one wire request each).
    pub epochs: usize,
    /// Total response bytes collected.
    pub transcript_bytes: usize,
}

/// The canonical transcript for `epochs`: each instance solved as its own
/// single-item request (id = epoch index) through an in-process service,
/// responses concatenated.
pub fn expected_transcript(epochs: &[Instance], config: ServiceConfig) -> String {
    let service = Service::start(config);
    let mut client = Client::new(&service);
    let mut transcript = String::new();
    for (i, instance) in epochs.iter().enumerate() {
        let t = client
            .solve_transcript(
                vec![instance.clone()],
                RequestOptions::default().with_id(i as u64),
            )
            .expect("the soak service admits every single-item epoch");
        transcript.push_str(&t);
    }
    service.shutdown();
    transcript
}

/// Replays `epochs` against the groomd at `addr` and returns the
/// concatenated response transcript (no comparison — see
/// [`assert_soak_matches`]).
///
/// Requests alternate between the `RECONFIGURE` verb (even epochs) and
/// plain `BATCH` (odd epochs); responses are verb-independent.
pub fn replay_tcp<A: ToSocketAddrs>(addr: A, epochs: &[Instance]) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut transcript = String::new();
    for (i, instance) in epochs.iter().enumerate() {
        let request = Request::batch(i as u64, vec![instance.clone()]);
        let wire = if i % 2 == 0 {
            format_reconfigure_request(&request)
        } else {
            format_batch_request(&request)
        }
        .expect("recorded epochs are always wire-expressible");
        writer.write_all(wire.as_bytes())?;
        // Read one response: lines up to and including END (or a
        // single-line ERR/REJECTED).
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "groomd closed mid-response",
                ));
            }
            let done =
                line.starts_with("END") || line.starts_with("ERR") || line.starts_with("REJECTED");
            transcript.push_str(&line);
            if done {
                break;
            }
        }
    }
    Ok(transcript)
}

/// Replays `epochs` against `addr` and asserts the transcript is
/// byte-identical to [`expected_transcript`] under `config`.
///
/// # Panics
/// Panics on a transcript mismatch — the soak contract is broken.
pub fn assert_soak_matches<A: ToSocketAddrs>(
    addr: A,
    epochs: &[Instance],
    config: ServiceConfig,
) -> std::io::Result<SoakReport> {
    let expected = expected_transcript(epochs, config);
    let actual = replay_tcp(addr, epochs)?;
    assert_eq!(
        actual, expected,
        "TCP soak transcript diverged from the in-process run"
    );
    Ok(SoakReport {
        epochs: epochs.len(),
        transcript_bytes: actual.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_recording;
    use crate::scenario::Scenario;
    use grooming_service::tcp;
    use std::net::TcpListener;

    fn soak_config() -> ServiceConfig {
        // `ServiceConfig` is non_exhaustive: built by mutating the default.
        #[allow(clippy::field_reassign_with_default)]
        {
            let mut config = ServiceConfig::default();
            config.workers = 2;
            config.master_seed = 7;
            config
        }
    }

    #[test]
    fn tcp_soak_matches_in_process_transcript() {
        let mut scenario = Scenario::ring(6, 3);
        scenario.horizon = 8_000;
        let out = run_recording(&scenario);
        assert!(out.epochs.len() >= 4, "soak needs a few epochs to bite");

        let service = Service::start(soak_config());
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("bound address");
        let server = tcp::serve(listener, &service).expect("tcp serve on loopback");

        let report =
            assert_soak_matches(addr, &out.epochs, soak_config()).expect("soak replay completes");
        assert_eq!(report.epochs, out.epochs.len());
        assert!(report.transcript_bytes > 0);

        service.begin_shutdown();
        server.join();
        service.shutdown();
    }
}
