//! **groomsim** — a deterministic discrete-event traffic simulator for
//! the grooming stack.
//!
//! Every workload the repository solved before this crate was
//! level-loaded: demands arrive all at once, or in hand-scripted churn
//! windows. Real SONET/WDM traffic is a stochastic process — connections
//! arrive (Poisson), hold (exponential), and depart — and grooming
//! quality under *time-varying* demand (blocking probability at an
//! admission limit, SADM churn per carried Erlang) can only be measured
//! by a dynamic workload generator. groomsim is that generator, built on
//! three pillars:
//!
//! 1. **A virtual clock over a deterministic event queue**
//!    ([`event`]): a binary heap popping in the total order
//!    `(time, sequence)`, where the sequence key derives from each demand
//!    stream's stable identity — never from heap insertion order.
//! 2. **Domain-separated per-stream RNGs** ([`rng`]): each stream's seed
//!    is `splitmix64(master ^ DOMAIN + id·φ)`, the same discipline as the
//!    portfolio's `attempt_seed` and the service's `item_seed`. Together
//!    with (1), traces are byte-identical across runs and invariant under
//!    event-source registration order.
//! 3. **Warm-start epochs** ([`engine`]): every arrival and departure is
//!    an [`grooming::solve::Instance::Reconfigure`] solve with a
//!    configurable rearrangement budget. The network starts empty; no
//!    cold solve ever runs (a CI guard enforces it).
//!
//! [`sweep`] bisects offered load to the 1% blocking point per scenario
//! cell, and [`soak`] replays a recorded epoch sequence against a live
//! groomd over TCP, asserting the wire transcript is byte-identical to
//! the in-process run. See DESIGN.md §17 for the full event model.
//!
//! ```
//! use grooming_sim::{run, Scenario};
//!
//! let mut scenario = Scenario::ring(8, 4);
//! scenario.horizon = 10_000;
//! let out = run(&scenario);
//! assert_eq!(out.report.offered, out.report.admitted + out.report.blocked);
//! // Same scenario, same seed: byte-identical trace.
//! assert_eq!(out.trace, run(&scenario).trace);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod soak;
pub mod sweep;

pub use engine::{run, run_recording, run_with_streams, AppliedEvent, SimOutcome};
pub use event::{Event, EventKind, EventQueue, EventSeq};
pub use report::SimReport;
pub use rng::stream_seed;
pub use scenario::{Scenario, TopologyFamily};
pub use soak::{assert_soak_matches, expected_transcript, replay_tcp, SoakReport};
pub use sweep::{blocking_point, SweepCell, BLOCKING_TARGET};
