//! Simulation scenarios: topology family, traffic process, and admission
//! limits.
//!
//! A [`Scenario`] is a *complete, self-contained* description of one
//! simulation: the same `(scenario, master_seed)` always produces the
//! same byte-identical event trace (see [`crate::engine::run`]). Offered
//! load is a Poisson process per demand stream — exponential
//! interarrivals and exponential holding times — quantized to integer
//! virtual-clock ticks.

use grooming_graph::generators;
use grooming_graph::topology::Topology;

/// The physical substrate demands arrive on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyFamily {
    /// A UPSR ring on `n` nodes. Admission is limited by the wavelength
    /// budget alone.
    Ring {
        /// Ring size.
        n: usize,
    },
    /// A `side × side` metro grid. Demands are routed on deterministic
    /// shortest paths, and admission additionally enforces a per-link
    /// lightpath capacity along the route.
    Mesh {
        /// Grid side length.
        side: usize,
    },
}

impl TopologyFamily {
    /// The family's display name (stable: used in traces and reports).
    pub fn name(&self) -> &'static str {
        match self {
            TopologyFamily::Ring { .. } => "ring",
            TopologyFamily::Mesh { .. } => "mesh",
        }
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologyFamily::Ring { n } => *n,
            TopologyFamily::Mesh { side } => side * side,
        }
    }

    /// Materializes the physical topology (unit link weights,
    /// uncapacitated nodes — the simulator's admission limits live in
    /// [`Scenario`], not in [`grooming_graph::topology::NodeCaps`]).
    pub fn build(&self) -> Topology {
        match self {
            TopologyFamily::Ring { n } => Topology::ring(*n),
            TopologyFamily::Mesh { side } => Topology::uniform(generators::grid(*side, *side)),
        }
    }
}

/// One complete simulation description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The physical substrate.
    pub family: TopologyFamily,
    /// The grooming factor.
    pub k: usize,
    /// The warm-repair rearrangement budget handed to
    /// [`grooming::solve::SolveConfig::rearrange_budget`].
    pub rearrange_budget: Option<usize>,
    /// Admission limit: an arrival whose repaired plan would need more
    /// wavelengths than this is blocked (the prior plan is kept).
    pub max_wavelengths: usize,
    /// Mesh-only admission limit: lightpaths per physical link. An
    /// arrival whose shortest-path route crosses a saturated link is
    /// blocked before the grooming solve. Ignored on rings.
    pub link_capacity: Option<u32>,
    /// Independent Poisson demand streams.
    pub streams: u64,
    /// Mean interarrival time per stream, in ticks.
    pub mean_interarrival: f64,
    /// Mean holding time, in ticks.
    pub mean_holding: f64,
    /// Arrivals stop at this virtual time; departures drain afterwards.
    pub horizon: u64,
    /// The master seed every stream RNG derives from
    /// ([`crate::rng::stream_seed`]).
    pub master_seed: u64,
    /// Portfolio worker threads for the epoch solves. Reconfigure solves
    /// are solver-independent (warm repair is its own deterministic
    /// algorithm), so this MUST NOT affect the trace — asserted by tests.
    pub jobs: usize,
}

impl Scenario {
    /// A ring scenario with moderate defaults (override fields directly).
    pub fn ring(n: usize, k: usize) -> Self {
        Scenario {
            family: TopologyFamily::Ring { n },
            k,
            rearrange_budget: Some(8),
            max_wavelengths: n,
            link_capacity: None,
            streams: 4,
            mean_interarrival: 1_000.0,
            mean_holding: 4_000.0,
            horizon: 50_000,
            master_seed: 0xD15C_0E7E,
            jobs: 1,
        }
    }

    /// A mesh scenario on a `side × side` grid with moderate defaults.
    pub fn mesh(side: usize, k: usize) -> Self {
        let n = side * side;
        Scenario {
            family: TopologyFamily::Mesh { side },
            k,
            rearrange_budget: Some(8),
            max_wavelengths: n,
            link_capacity: Some(24),
            streams: 4,
            mean_interarrival: 1_000.0,
            mean_holding: 4_000.0,
            horizon: 50_000,
            master_seed: 0xD15C_0E7E,
            jobs: 1,
        }
    }

    /// The analytic offered load in Erlangs: `streams · holding /
    /// interarrival` (each stream offers `holding/interarrival` Erlangs).
    pub fn offered_erlangs(&self) -> f64 {
        self.streams as f64 * self.mean_holding / self.mean_interarrival
    }

    /// Rescales the per-stream arrival rate so the scenario offers
    /// `erlangs` in aggregate (holding time and stream count are kept;
    /// the interarrival mean absorbs the change).
    pub fn with_offered_erlangs(mut self, erlangs: f64) -> Self {
        assert!(erlangs > 0.0, "offered load must be positive");
        self.mean_interarrival = self.streams as f64 * self.mean_holding / erlangs;
        self
    }

    /// The canonical stream identity list (`0..streams`). Tests permute
    /// this and hand it to [`crate::engine::run_with_streams`] to assert
    /// registration-order invariance.
    pub fn stream_ids(&self) -> Vec<u64> {
        (0..self.streams).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_erlangs_round_trips_through_rescale() {
        let s = Scenario::ring(8, 4).with_offered_erlangs(12.5);
        assert!((s.offered_erlangs() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn families_build_their_topologies() {
        let ring = TopologyFamily::Ring { n: 6 }.build();
        assert_eq!(ring.num_nodes(), 6);
        assert_eq!(ring.num_links(), 6);
        let mesh = TopologyFamily::Mesh { side: 3 }.build();
        assert_eq!(mesh.num_nodes(), 9);
        assert_eq!(mesh.num_links(), 12);
    }
}
