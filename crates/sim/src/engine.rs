//! The simulation engine: the event loop driving warm-start solves.
//!
//! Every arrival and departure epoch goes through
//! [`grooming::solve::Instance::Reconfigure`] — the warm-start path — so
//! the simulator measures exactly what an operator's control loop would
//! pay: blocking probability at the admission limits, SADM churn under a
//! [`rearrange_budget`](grooming::solve::SolveConfig::rearrange_budget),
//! and per-epoch solve latency. Cold solves are deliberately absent
//! (enforced by a CI guard): the network starts empty and every state is
//! reached by repairing the previous one.
//!
//! # Determinism
//!
//! The engine's observable outputs — the event [`trace`](SimOutcome::trace),
//! the [`SimReport`], and the recorded epoch instances — are pure
//! functions of `(scenario, master_seed)`:
//!
//! * event order is the `(time, sequence)` total order of
//!   [`crate::event::EventQueue`], with sequence keys derived from stream
//!   identity (registration order is unobservable);
//! * every random draw comes from a per-stream RNG seeded by
//!   [`crate::rng::stream_seed`], and each stream's draws happen in a
//!   fixed per-stream order (an arrival's holding time is drawn when the
//!   arrival is *scheduled*, so admission outcomes never shift a stream's
//!   consumption);
//! * warm repair is deterministic and solver-independent, so the `jobs`
//!   knob cannot leak into the trace;
//! * wall-clock latencies are recorded only in
//!   [`SimOutcome::latency`], never in the trace or report.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use grooming::partition::EdgePartition;
use grooming::portfolio::DEFAULT_PORTFOLIO;
use grooming::solve::{
    DemandDelta, Instance, Plan, PortfolioSolver, SolveConfig, SolveContext, Solver,
};
use grooming_graph::EdgeId;
use grooming_service::Histogram;
use grooming_sonet::demand::{DemandPair, DemandSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{Event, EventKind, EventQueue, EventSeq};
use crate::report::SimReport;
use crate::rng::stream_seed;
use crate::scenario::{Scenario, TopologyFamily};

/// One event as the engine resolved it — the structured form of a trace
/// line, for callers (like `examples/dynamic_provisioning.rs`) that want
/// to replay the admitted sequence through another provisioning policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppliedEvent {
    /// An arrival was admitted and provisioned.
    Admitted {
        /// Virtual time.
        time: u64,
        /// The provisioned pair.
        pair: DemandPair,
        /// Its holding time in ticks.
        holding: u64,
    },
    /// An arrival was blocked (no state change).
    Blocked {
        /// Virtual time.
        time: u64,
        /// The refused pair.
        pair: DemandPair,
    },
    /// An admitted connection departed.
    Departed {
        /// Virtual time.
        time: u64,
        /// The withdrawn pair.
        pair: DemandPair,
    },
}

/// Everything one simulation run produces.
pub struct SimOutcome {
    /// The summary statistics (deterministic; see [`SimReport`]).
    pub report: SimReport,
    /// The event trace: one line per processed event, byte-identical
    /// across runs of the same `(scenario, master_seed)`.
    pub trace: String,
    /// The resolved event sequence in processing order.
    pub applied: Vec<AppliedEvent>,
    /// Wall-clock latency of each warm-start solve (observational only —
    /// deliberately outside the trace and report).
    pub latency: Histogram,
    /// When recording was requested: the exact [`Instance::Reconfigure`]
    /// sequence the engine solved, for TCP soak replay
    /// ([`crate::soak`]). Empty otherwise.
    pub epochs: Vec<Instance>,
}

/// Runs `scenario` with streams registered in canonical order.
pub fn run(scenario: &Scenario) -> SimOutcome {
    run_with_streams(scenario, &scenario.stream_ids(), false)
}

/// Runs `scenario` and records every solved epoch instance for replay.
pub fn run_recording(scenario: &Scenario) -> SimOutcome {
    run_with_streams(scenario, &scenario.stream_ids(), true)
}

/// Runs `scenario` with demand streams registered in the given order.
///
/// The registration order MUST be unobservable: any permutation of the
/// same id set yields a byte-identical trace and report (property-tested
/// in `tests/determinism.rs`).
///
/// # Panics
/// Panics if `streams` contains duplicate ids, or if a warm-start solve
/// fails (the engine only builds deltas the solver accepts).
pub fn run_with_streams(scenario: &Scenario, streams: &[u64], record: bool) -> SimOutcome {
    let n = scenario.family.num_nodes();
    let topology = match scenario.family {
        TopologyFamily::Mesh { .. } => Some(scenario.family.build()),
        TopologyFamily::Ring { .. } => None,
    };

    // Per-stream RNGs, keyed by stable identity (not registration slot).
    let mut rngs: HashMap<u64, StdRng> = HashMap::with_capacity(streams.len());
    let mut queue = EventQueue::new();
    for &sid in streams {
        let mut rng = StdRng::seed_from_u64(stream_seed(scenario.master_seed, sid));
        let first = exp_ticks(&mut rng, scenario.mean_interarrival).max(1);
        if first < scenario.horizon {
            let pair = draw_pair(&mut rng, n);
            let holding = exp_ticks(&mut rng, scenario.mean_holding);
            queue.push(Event {
                time: first,
                seq: EventSeq {
                    stream: sid,
                    index: 0,
                    departure: false,
                },
                kind: EventKind::Arrival { pair, holding },
            });
        }
        let clash = rngs.insert(sid, rng);
        assert!(clash.is_none(), "duplicate stream id {sid}");
    }

    // The solve context persists across epochs: the workspace amortizes,
    // and the rearrange budget rides in via the config. Warm repair
    // consumes no solver RNG, so the seed cannot reach the trace.
    // `SolveConfig` is non_exhaustive: built by mutating the default.
    #[allow(clippy::field_reassign_with_default)]
    let config = {
        let mut config = SolveConfig::default();
        config.rearrange_budget = scenario.rearrange_budget;
        config
    };
    let mut ctx =
        SolveContext::seeded(stream_seed(scenario.master_seed, u64::MAX)).with_config(config);
    let solver = PortfolioSolver {
        portfolio: &DEFAULT_PORTFOLIO,
        restarts: 0,
        jobs: scenario.jobs,
        master_seed: Some(scenario.master_seed),
    };

    // Provisioned state: the demand snapshot and its partition, plus the
    // route each admitted connection holds (mesh link accounting).
    let mut demands = DemandSet::new(n);
    let mut prior = EdgePartition::new(Vec::new());
    let mut link_load: Vec<u32> = topology
        .as_ref()
        .map(|t| vec![0; t.num_links()])
        .unwrap_or_default();
    let mut routes: HashMap<(u64, u64), Vec<EdgeId>> = HashMap::new();

    let mut trace = String::new();
    let mut applied = Vec::new();
    let mut epochs = Vec::new();
    let mut latency = Histogram::default();
    let mut report = SimReport {
        family: scenario.family.name(),
        nodes: n,
        k: scenario.k,
        rearrange_budget: scenario.rearrange_budget,
        offered: 0,
        admitted: 0,
        blocked: 0,
        blocked_links: 0,
        blocking_probability: 0.0,
        offered_erlangs: scenario.offered_erlangs(),
        carried_erlangs: 0.0,
        epochs: 0,
        sadms_moved: 0,
        parts_repaired: 0,
        final_wavelengths: 0,
        final_sadms: 0,
        final_active: 0,
        peak_active: 0,
        end_time: 0,
    };

    // Carried-load integral: active connections × elapsed virtual time.
    let mut active: usize = 0;
    let mut last_time: u64 = 0;
    let mut active_ticks: u128 = 0;

    while let Some(event) = queue.pop() {
        active_ticks += active as u128 * u128::from(event.time - last_time);
        last_time = event.time;
        match event.kind {
            EventKind::Arrival { pair, holding } => {
                // Draw this stream's next arrival *first*, so the
                // stream's RNG consumption is independent of how the
                // present arrival fares at admission.
                let rng = rngs
                    .get_mut(&event.seq.stream)
                    .expect("every scheduled event belongs to a registered stream");
                let gap = exp_ticks(rng, scenario.mean_interarrival).max(1);
                let next_time = event.time.saturating_add(gap);
                if next_time < scenario.horizon {
                    let next_pair = draw_pair(rng, n);
                    let next_holding = exp_ticks(rng, scenario.mean_holding);
                    queue.push(Event {
                        time: next_time,
                        seq: EventSeq {
                            stream: event.seq.stream,
                            index: event.seq.index + 1,
                            departure: false,
                        },
                        kind: EventKind::Arrival {
                            pair: next_pair,
                            holding: next_holding,
                        },
                    });
                }

                report.offered += 1;
                let head = format!(
                    "t={} s={}#{} arrive {}-{} hold={holding}",
                    event.time,
                    event.seq.stream,
                    event.seq.index,
                    pair.lo().index(),
                    pair.hi().index()
                );

                // Mesh link admission: the shortest-path route must have
                // spare lightpath capacity on every link.
                let route = topology.as_ref().map(|t| {
                    t.shortest_path(pair.lo(), pair.hi())
                        .expect("grid topologies are connected")
                        .links
                });
                if let (Some(route), Some(cap)) = (&route, scenario.link_capacity) {
                    if route.iter().any(|&e| link_load[e.index()] >= cap) {
                        report.blocked += 1;
                        report.blocked_links += 1;
                        let _ = writeln!(trace, "{head} -> blocked links");
                        applied.push(AppliedEvent::Blocked {
                            time: event.time,
                            pair,
                        });
                        continue;
                    }
                }

                // The warm-start epoch: repair the prior plan around the
                // added pair.
                let instance = Instance::reconfigure(
                    demands.clone(),
                    prior.clone(),
                    DemandDelta::new(vec![pair], Vec::new()),
                    scenario.k,
                );
                let (outcome, parts_repaired, sadms_moved) =
                    solve_epoch(&solver, &instance, &mut ctx, &mut latency);
                report.epochs += 1;
                if record {
                    epochs.push(instance);
                }
                let w = outcome.partition.num_wavelengths();
                if w > scenario.max_wavelengths {
                    // Wavelength-budget blocking: discard the repaired
                    // plan, keep the prior state.
                    report.blocked += 1;
                    let _ = writeln!(trace, "{head} -> blocked wavelengths (needed W={w})");
                    applied.push(AppliedEvent::Blocked {
                        time: event.time,
                        pair,
                    });
                    continue;
                }

                // Commit. An add-only delta appends the pair, so the new
                // snapshot is the old one plus `pair` at the end — the
                // same numbering `solve_reconfigure` produced.
                demands.add(pair.lo(), pair.hi());
                debug_assert_eq!(demands.len(), outcome.partition.num_edges());
                report.admitted += 1;
                report.sadms_moved += sadms_moved;
                report.parts_repaired += parts_repaired;
                let sadms = outcome.report.sadm_total;
                prior = outcome.partition;
                active += 1;
                report.peak_active = report.peak_active.max(active);
                if let Some(route) = route {
                    for &e in &route {
                        link_load[e.index()] += 1;
                    }
                    routes.insert((event.seq.stream, event.seq.index), route);
                }
                queue.push(Event {
                    time: event.time.saturating_add(holding),
                    seq: EventSeq {
                        departure: true,
                        ..event.seq
                    },
                    kind: EventKind::Departure { pair },
                });
                let _ = writeln!(
                    trace,
                    "{head} -> carried W={w} sadms={sadms} moved={sadms_moved} \
                     repaired={parts_repaired}"
                );
                applied.push(AppliedEvent::Admitted {
                    time: event.time,
                    pair,
                    holding,
                });
            }
            EventKind::Departure { pair } => {
                let instance = Instance::reconfigure(
                    demands.clone(),
                    prior.clone(),
                    DemandDelta::new(Vec::new(), vec![pair]),
                    scenario.k,
                );
                let (outcome, parts_repaired, sadms_moved) =
                    solve_epoch(&solver, &instance, &mut ctx, &mut latency);
                report.epochs += 1;
                if record {
                    epochs.push(instance);
                }
                demands = remove_earliest(&demands, pair);
                debug_assert_eq!(demands.len(), outcome.partition.num_edges());
                report.sadms_moved += sadms_moved;
                report.parts_repaired += parts_repaired;
                let w = outcome.partition.num_wavelengths();
                let sadms = outcome.report.sadm_total;
                prior = outcome.partition;
                active -= 1;
                if let Some(route) = routes.remove(&(event.seq.stream, event.seq.index)) {
                    for &e in &route {
                        link_load[e.index()] -= 1;
                    }
                }
                let _ = writeln!(
                    trace,
                    "t={} s={}#{} depart {}-{} -> W={w} sadms={sadms} moved={sadms_moved} \
                     repaired={parts_repaired}",
                    event.time,
                    event.seq.stream,
                    event.seq.index,
                    pair.lo().index(),
                    pair.hi().index()
                );
                applied.push(AppliedEvent::Departed {
                    time: event.time,
                    pair,
                });
            }
        }
    }

    report.end_time = last_time;
    report.blocking_probability = if report.offered > 0 {
        report.blocked as f64 / report.offered as f64
    } else {
        0.0
    };
    let span = last_time.max(scenario.horizon).max(1);
    report.carried_erlangs = active_ticks as f64 / span as f64;
    report.final_wavelengths = prior.num_wavelengths();
    report.final_sadms = prior.sadm_cost(&demands.to_traffic_graph());
    report.final_active = active;

    SimOutcome {
        report,
        trace,
        applied,
        latency,
        epochs,
    }
}

/// Solves one reconfigure epoch, recording wall-clock latency, and
/// unwraps the reconfigure plan arm.
fn solve_epoch(
    solver: &PortfolioSolver<'_>,
    instance: &Instance,
    ctx: &mut SolveContext,
    latency: &mut Histogram,
) -> (grooming::pipeline::GroomingOutcome, u64, u64) {
    let started = Instant::now();
    let solution = solver
        .solve(instance, ctx)
        .expect("the engine only builds deltas warm repair accepts");
    latency.record(started.elapsed());
    match solution.plan {
        Plan::Reconfigure {
            outcome,
            parts_repaired,
            sadms_moved,
        } => (outcome, parts_repaired, sadms_moved),
        _ => unreachable!("reconfigure instances yield reconfigure plans"),
    }
}

/// Withdraws one unit of `pair` from `demands`: the **earliest surviving
/// occurrence** (lowest edge id), survivors keeping their relative order —
/// the exact numbering `solve_reconfigure` gives the post-delta snapshot
/// (see DESIGN.md §15).
fn remove_earliest(demands: &DemandSet, pair: DemandPair) -> DemandSet {
    let mut next = DemandSet::new(demands.num_nodes());
    let mut dropped = false;
    for &p in demands.pairs() {
        if !dropped && p == pair {
            dropped = true;
            continue;
        }
        next.add(p.lo(), p.hi());
    }
    assert!(dropped, "departure for a pair that is not provisioned");
    next
}

/// An exponential holding/interarrival draw with the given mean,
/// quantized to whole ticks. Zero is a legal outcome (and certain when
/// `mean <= 0`): a connection may arrive and instantly depart.
fn exp_ticks<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    // One uniform is always consumed, so a stream's draw schedule is a
    // pure function of its seed regardless of the mean.
    let u: f64 = rng.gen_range(0.0..1.0);
    if mean <= 0.0 {
        return 0;
    }
    // 1 - u ∈ (0, 1]: ln is finite, the draw is bounded below by 0.
    (-mean * (1.0 - u).ln()).round() as u64
}

/// A uniform random demand pair over `n` nodes (rejection-samples the
/// diagonal).
fn draw_pair<R: Rng>(rng: &mut R, n: usize) -> DemandPair {
    loop {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            return DemandPair::new(grooming_graph::NodeId(a), grooming_graph::NodeId(b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_scenario_same_seed_is_byte_identical() {
        let scenario = Scenario::ring(8, 4);
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.render(), b.report.render());
    }

    #[test]
    fn jobs_count_never_reaches_the_trace() {
        let mut scenario = Scenario::ring(8, 4);
        let one = run(&scenario);
        scenario.jobs = 4;
        let four = run(&scenario);
        assert_eq!(one.trace, four.trace, "--jobs leaked into the trace");
        assert_eq!(one.report, four.report);
    }

    #[test]
    fn books_balance() {
        let scenario = Scenario::ring(8, 4);
        let out = run(&scenario);
        let r = &out.report;
        assert_eq!(r.offered, r.admitted + r.blocked);
        // Every admitted connection departs before the queue drains.
        assert_eq!(r.final_active, 0);
        // Epochs: one per admitted arrival, one per departure, one per
        // wavelength-blocked arrival (link-blocked ones never solve).
        assert_eq!(r.epochs, 2 * r.admitted + (r.blocked - r.blocked_links));
        assert!(r.carried_erlangs <= r.offered_erlangs + 1e-9);
        assert_eq!(out.applied.len() as u64, r.offered + r.admitted);
    }

    #[test]
    fn tight_wavelength_budget_blocks() {
        let mut scenario = Scenario::ring(8, 4).with_offered_erlangs(24.0);
        scenario.max_wavelengths = 1;
        let out = run(&scenario);
        assert!(out.report.blocked > 0, "W=1 must block under 24 Erlangs");
        assert!(out.report.final_wavelengths <= 1);
    }

    #[test]
    fn mesh_link_capacity_blocks_before_the_solver() {
        let mut scenario = Scenario::mesh(3, 4).with_offered_erlangs(30.0);
        scenario.link_capacity = Some(1);
        scenario.max_wavelengths = usize::MAX;
        let out = run(&scenario);
        assert!(out.report.blocked_links > 0);
        assert_eq!(out.report.blocked, out.report.blocked_links);
    }

    #[test]
    fn recording_captures_every_epoch() {
        let scenario = Scenario::ring(6, 3);
        let out = run_recording(&scenario);
        assert_eq!(out.epochs.len() as u64, out.report.epochs);
        assert!(out
            .epochs
            .iter()
            .all(|i| matches!(i, Instance::Reconfigure { .. })));
    }
}
