//! The simulator's determinism contract: the event trace and the final
//! [`SimReport`] are pure functions of `(scenario, master_seed)` —
//! invariant under event-source registration order and under the solver
//! `jobs` knob — plus the zero-duration (arrive-and-instantly-depart)
//! edge case.

use grooming_sim::{run, run_with_streams, AppliedEvent, Scenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A quick scenario: small ring, short horizon, enough churn to matter.
fn quick(master_seed: u64, streams: u64) -> Scenario {
    let mut scenario = Scenario::ring(8, 4);
    scenario.streams = streams;
    scenario.horizon = 6_000;
    scenario.master_seed = master_seed;
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Permuting the event-source registration order and re-running from
    /// the same master seed yields a byte-identical event trace and the
    /// same final report.
    #[test]
    fn registration_order_is_unobservable(
        master_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        streams in 2u64..6,
    ) {
        let scenario = quick(master_seed, streams);
        let canonical = run_with_streams(&scenario, &scenario.stream_ids(), false);

        let mut permuted = scenario.stream_ids();
        permuted.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let shuffled = run_with_streams(&scenario, &permuted, false);

        prop_assert_eq!(&canonical.trace, &shuffled.trace);
        prop_assert_eq!(&canonical.report, &shuffled.report);
        prop_assert_eq!(canonical.report.render(), shuffled.report.render());
        prop_assert_eq!(&canonical.applied, &shuffled.applied);
    }

    /// The solver `jobs` knob never reaches the trace: warm repair is its
    /// own deterministic algorithm.
    #[test]
    fn jobs_count_is_unobservable(
        master_seed in any::<u64>(),
        jobs in 1usize..5,
    ) {
        let base = quick(master_seed, 3);
        let mut parallel = base.clone();
        parallel.jobs = jobs;
        let a = run(&base);
        let b = run(&parallel);
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(&a.report, &b.report);
    }
}

/// Zero-duration connections: with a zero mean holding time every draw
/// quantizes to zero ticks, so each admitted arrival departs in the same
/// instant it arrived — the departure must sort immediately after its own
/// arrival, the active count must return to zero between instants, and
/// nothing may block (the plan never accumulates).
#[test]
fn zero_duration_connections_arrive_and_instantly_depart() {
    let mut scenario = Scenario::ring(8, 4);
    scenario.mean_holding = 0.0;
    scenario.horizon = 4_000;
    let out = run(&scenario);
    let r = &out.report;
    assert!(r.offered > 0, "the horizon must admit some arrivals");
    assert_eq!(
        r.blocked, 0,
        "instant departures can never exhaust capacity"
    );
    assert_eq!(r.admitted, r.offered);
    assert_eq!(r.epochs, 2 * r.admitted);
    assert_eq!(r.final_active, 0);
    assert_eq!(r.final_wavelengths, 0);
    assert_eq!(r.peak_active, 1, "at most one connection lives per instant");
    assert!((r.carried_erlangs - 0.0).abs() < 1e-12);

    // Each arrival is immediately followed by its own departure.
    let mut pending: Option<AppliedEvent> = None;
    for ev in &out.applied {
        match (pending.take(), ev) {
            (
                None,
                AppliedEvent::Admitted {
                    time,
                    pair,
                    holding,
                },
            ) => {
                assert_eq!(*holding, 0);
                pending = Some(AppliedEvent::Departed {
                    time: *time,
                    pair: *pair,
                });
            }
            (Some(expected), got @ AppliedEvent::Departed { .. }) => {
                assert_eq!(*got, expected, "departure must trail its own arrival");
            }
            (p, e) => panic!("unexpected event order: pending {p:?}, got {e:?}"),
        }
    }
    assert!(pending.is_none(), "a zero-duration arrival never lingers");
}

/// Duplicate stream ids are a caller bug, not a silent seed collision.
#[test]
#[should_panic(expected = "duplicate stream id")]
fn duplicate_stream_ids_panic() {
    let scenario = quick(1, 2);
    let _ = run_with_streams(&scenario, &[0, 0], false);
}
