//! Metro-ring planning scenario: compare every algorithm on one realistic
//! demand set and several tributary rates.
//!
//! A regional carrier runs a 24-node OC-192 UPSR. Access traffic arrives
//! as OC-3, OC-12, or OC-48 tributaries; each choice fixes a different
//! grooming factor. The planner wants the SADM bill for each algorithm at
//! each rate.
//!
//! Run with: `cargo run -p grooming --example metro_ring`

use grooming::algorithm::Algorithm;
use grooming::bounds;
use grooming::pipeline::groom;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::demand::DemandSet;
use grooming_sonet::rates::OcRate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 24;
    let mut rng = StdRng::seed_from_u64(77);

    // Demand mix: a hubbed pattern (every node talks to the two data-center
    // nodes 0 and 12) plus random east-west pairs.
    let mut demands = DemandSet::new(n);
    for v in 1..n as u32 {
        if v != 12 {
            demands.add(
                grooming_graph::ids::NodeId(0),
                grooming_graph::ids::NodeId(v),
            );
            demands.add(
                grooming_graph::ids::NodeId(12),
                grooming_graph::ids::NodeId(v),
            );
        }
    }
    let extra = DemandSet::random(n, 30, &mut rng);
    for p in extra.pairs() {
        demands.add(p.lo(), p.hi());
    }
    println!(
        "24-node OC-192 metro ring, {} symmetric demand pairs (hub-heavy)",
        demands.len()
    );

    let line = OcRate::Oc192;
    let algorithms = [
        Algorithm::Goldschmidt,
        Algorithm::Brauner,
        Algorithm::WangGuIcc06,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
    ];

    for trib in [OcRate::Oc3, OcRate::Oc12, OcRate::Oc48] {
        let k = line.grooming_factor(trib).unwrap();
        let lb = bounds::lower_bound(&demands.to_traffic_graph(), k);
        println!(
            "\n== tributary {trib} on {line} (grooming factor k = {k}, SADM lower bound {lb}) =="
        );
        println!(
            "{:<24} {:>6} {:>12} {:>10} {:>12}",
            "algorithm", "SADMs", "wavelengths", "bypasses", "utilization"
        );
        for algo in algorithms {
            let out = groom(&demands, k, algo, &mut rng).unwrap();
            println!(
                "{:<24} {:>6} {:>12} {:>10} {:>11.1}%",
                algo.name(),
                out.report.sadm_total,
                out.report.wavelengths,
                out.report.bypass_total,
                100.0 * out.report.utilization()
            );
        }
    }

    println!(
        "\nReading: hub nodes 0 and 12 dominate the ADM bill; grooming with\n\
         larger tributaries (smaller k) trades wavelengths for SADMs."
    );
}
