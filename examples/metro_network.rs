//! A whole metro network: core ring + access rings, planned end to end
//! through the unified solve surface (one [`Instance::MultiRing`] solved
//! against a caller-owned [`SolveContext`]).
//!
//! Demands between access rings transit the core through gateway offices;
//! each ring is groomed with the paper's algorithm. The example sizes the
//! network, prints per-ring bills, and shows the gateway overhead
//! cross-ring traffic pays. For a mesh of arbitrary topology (routing
//! before grooming) see the `mesh_metro` example.
//!
//! Run with: `cargo run -p grooming --example metro_network`

use grooming::algorithm::Algorithm;
use grooming::solve::{Instance, Plan, SolveContext, Solver};
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::multiring::{rn, MultiRingNetwork, RingNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Core ring of 10 offices; three access rings of 8 hanging off
    // offices 0, 3 and 7.
    let mut net = MultiRingNetwork::new(vec![10, 8, 8, 8]);
    net.add_gateway(rn(0, 0), rn(1, 0));
    net.add_gateway(rn(0, 3), rn(2, 0));
    net.add_gateway(rn(0, 7), rn(3, 0));

    // Traffic: 60% stays inside an access ring, 40% crosses the network.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut demands: Vec<(RingNode, RingNode)> = Vec::new();
    while demands.len() < 80 {
        let (ra, rb) = if rng.gen_bool(0.6) {
            let r = rng.gen_range(1..4);
            (r, r)
        } else {
            (rng.gen_range(0..4), rng.gen_range(0..4))
        };
        let a = rn(ra, rng.gen_range(0..net.ring_size(ra) as u32));
        let b = rn(rb, rng.gen_range(0..net.ring_size(rb) as u32));
        if a != b {
            demands.push((a, b));
        }
    }

    let k = 16; // OC-3 tributaries on OC-48 wavelengths
    let num_rings = net.num_rings();
    let num_demands = demands.len();
    let mut ctx = SolveContext::seeded(2026);
    let sol = Algorithm::SpanTEuler(TreeStrategy::Bfs)
        .solve(&Instance::multi_ring(net, demands, k), &mut ctx)
        .expect("network grooms");
    let Plan::MultiRing { grooming: out } = sol.plan else {
        unreachable!("multi-ring instances yield network plans");
    };

    println!("metro network: {num_rings} rings, {num_demands} demands, grooming factor k = {k}\n");
    println!(
        "{:<10} {:>6} {:>8} {:>13} {:>12}",
        "ring", "nodes", "pairs", "wavelengths", "SADMs"
    );
    for (i, o) in out.rings.iter().enumerate() {
        let label = if i == 0 { "core" } else { "access" };
        println!(
            "{:<10} {:>6} {:>8} {:>13} {:>12}",
            format!("{i} ({label})"),
            o.report.nodes,
            o.report.pairs_carried,
            o.report.wavelengths,
            o.report.sadm_total
        );
    }
    println!(
        "\nnetwork totals: {} SADMs, {} wavelengths, {} intra-ring segments \
         for {} demands\n(+{} segments = the gateway overhead of cross-ring traffic)",
        out.total_sadms,
        out.total_wavelengths,
        out.total_segments,
        num_demands,
        out.total_segments - num_demands
    );
    println!(
        "aggregate SADM lower bound across rings: {}",
        ctx.stats().lower_bound
    );
}
