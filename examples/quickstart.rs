//! Quickstart: groom random symmetric demands on a 16-node UPSR ring.
//!
//! Run with: `cargo run -p grooming --example quickstart`

use grooming::algorithm::Algorithm;
use grooming::bounds;
use grooming::pipeline::groom;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::demand::DemandSet;
use grooming_sonet::grooming::GroomingAssignment;
use grooming_sonet::rates::OcRate;
use grooming_sonet::ring::UpsrRing;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2006);

    // A 16-node metro ring carrying 40 random symmetric OC-3 demand pairs
    // on OC-48 wavelengths: grooming factor k = 16.
    let n = 16;
    let k = OcRate::Oc48
        .grooming_factor(OcRate::Oc3)
        .expect("OC-3 divides OC-48");
    let demands = DemandSet::random(n, 40, &mut rng);
    println!(
        "ring: {n} nodes, {} demand pairs, {} per {} wavelength (k = {k})",
        demands.len(),
        OcRate::Oc3,
        OcRate::Oc48
    );

    // Without grooming: one wavelength per demand (2 SADMs each).
    let dedicated = GroomingAssignment::dedicated(UpsrRing::new(n), k, &demands);
    println!(
        "no grooming      : {:>3} SADMs on {:>2} wavelengths",
        dedicated.sadm_count(),
        dedicated.num_wavelengths()
    );

    // With the paper's SpanT_Euler heuristic.
    let outcome = groom(
        &demands,
        k,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        &mut rng,
    )
    .expect("SpanT_Euler handles arbitrary demands");
    println!(
        "SpanT_Euler      : {:>3} SADMs on {:>2} wavelengths (minimum possible: {})",
        outcome.report.sadm_total,
        outcome.report.wavelengths,
        demands.len().div_ceil(k)
    );
    println!(
        "instance lower bound on SADMs: {}",
        bounds::lower_bound(&demands.to_traffic_graph(), k)
    );
    println!();
    println!("{}", outcome.report);

    // Where the ADMs sit.
    println!();
    println!("per-node SADMs: {:?}", outcome.report.per_node_adms);
}
