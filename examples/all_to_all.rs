//! The all-to-all traffic pattern: the classic, heavily studied special
//! case of the paper's *regular* pattern (`r = n − 1`).
//!
//! Sweeps ring sizes and grooming factors, running `Regular_Euler` against
//! the baselines and printing the Theorem 10 guarantee next to the measured
//! cost.
//!
//! Run with: `cargo run -p grooming --example all_to_all`

use grooming::algorithm::Algorithm;
use grooming::bounds;
use grooming::pipeline::groom;
use grooming::regular_euler::regular_euler_detailed;
use grooming_sonet::demand::DemandSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    for n in [8usize, 12, 16] {
        let demands = DemandSet::all_to_all(n);
        let g = demands.to_traffic_graph();
        let r = n - 1;
        let m = g.num_edges();
        println!("\n== all-to-all on {n} nodes: r = {r}, m = {m} pairs ==");
        println!(
            "{:>4} {:>22} {:>22} {:>14} {:>14} {:>8}",
            "k",
            "Regular_Euler SADMs",
            "best baseline SADMs",
            "Theorem 10 UB",
            "lower bound",
            "waves"
        );
        for k in [3usize, 4, 16] {
            let run = regular_euler_detailed(&g, k).unwrap();
            let cost = run.partition.sadm_cost(&g);
            let bound = if r % 2 == 0 {
                bounds::theorem10_upper_bound_even(m, k)
            } else {
                bounds::theorem10_upper_bound_odd(m, k, n, r)
            };
            let best_baseline = [
                Algorithm::Goldschmidt,
                Algorithm::Brauner,
                Algorithm::WangGuIcc06,
            ]
            .iter()
            .map(|a| groom(&demands, k, *a, &mut rng).unwrap().report.sadm_total)
            .min()
            .unwrap();
            println!(
                "{:>4} {:>22} {:>22} {:>14} {:>14} {:>8}",
                k,
                cost,
                best_baseline,
                bound,
                bounds::lower_bound(&g, k),
                run.partition.num_wavelengths()
            );
        }
    }
    println!(
        "\nRegular_Euler always uses the minimum number of wavelengths and\n\
         stays within its Theorem 10 guarantee; even r (odd n) is the easy\n\
         case — one Euler circuit covers the whole traffic graph."
    );
}
