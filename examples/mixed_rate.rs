//! Mixed-rate (non-unitary) demands: the paper's problem variant where
//! demands carry different bandwidths.
//!
//! Shows both service models on the same demand set:
//! * splittable  — expand to unit demands (a traffic multigraph) and run
//!   the paper's SpanT_Euler;
//! * non-splittable — first-fit-decreasing bin packing with SADM affinity.
//!
//! Run with: `cargo run -p grooming --example mixed_rate`

use grooming::algorithm::Algorithm;
use grooming::pipeline::groom;
use grooming_graph::ids::NodeId;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::rates::OcRate;
use grooming_sonet::weighted::{first_fit_decreasing, WeightedDemandSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 12;
    let k = OcRate::Oc48.grooming_factor(OcRate::Oc3).unwrap(); // 16
    let mut rng = StdRng::seed_from_u64(3);

    // Random mixed-rate demands: OC-3 ×1, ×4 (≈OC-12), ×16 (≈OC-48)
    // between random pairs.
    let mut set = WeightedDemandSet::new(n);
    for _ in 0..18 {
        let a = rng.gen_range(0..n as u32);
        let mut b = rng.gen_range(0..n as u32);
        while b == a {
            b = rng.gen_range(0..n as u32);
        }
        let units = *[1u32, 1, 1, 4, 4, 16].get(rng.gen_range(0..6)).unwrap();
        set.add(NodeId(a), NodeId(b), units);
    }
    println!(
        "{} weighted demands on a {n}-node ring, {} OC-3-equivalent units, k = {k}",
        set.demands().len(),
        set.total_units()
    );

    // Non-splittable: every demand rides one wavelength.
    let ns = first_fit_decreasing(&set, k);
    ns.validate(Some(&set)).unwrap();
    println!(
        "\nnon-splittable (FFD + SADM affinity): {:>3} SADMs on {:>2} wavelengths",
        ns.sadm_count(),
        ns.num_wavelengths()
    );

    // Splittable: expand into unit pairs and groom with the paper's
    // algorithm (parallel edges in the traffic multigraph).
    let unitary = set.expand();
    let out = groom(
        &unitary,
        k,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        &mut rng,
    )
    .unwrap();
    println!(
        "splittable (SpanT_Euler on expansion): {:>3} SADMs on {:>2} wavelengths (min {})",
        out.report.sadm_total,
        out.report.wavelengths,
        unitary.len().div_ceil(k)
    );

    println!(
        "\nSplitting always achieves the minimum wavelength count; whether it\n\
         also saves SADMs depends on how much the big demands fragment."
    );
}
