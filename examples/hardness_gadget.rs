//! The NP-hardness reduction, executed: Lemma 6's regularization gadget and
//! Theorem 7's KEPRG instance, verified with exact solvers on small inputs.
//!
//! Run with: `cargo run -p grooming --example hardness_gadget`

use grooming::exact::exact_minimum;
use grooming::hardness::{keprg_from_regular_ept, regularize, verify_theorem7_equivalence};
use grooming_graph::graph::Graph;
use grooming_graph::triangles::{ept_solve, is_triangle_partition};
use grooming_graph::{generators, ids::NodeId};

fn describe(name: &str, g: &Graph) {
    println!(
        "{name}: n = {}, m = {}, degrees {}..{}",
        g.num_nodes(),
        g.num_edges(),
        g.min_degree(),
        g.max_degree()
    );
}

fn main() {
    println!("=== Lemma 6: EPT -> EPT on regular graphs ===\n");

    // A YES instance of EPT: the bowtie (two triangles sharing a node).
    let bowtie = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
    describe("bowtie (YES instance)", &bowtie);
    let partition = ept_solve(&bowtie).expect("bowtie partitions into 2 triangles");
    println!("  triangle partition: {partition:?}");

    let reg = regularize(&bowtie);
    describe("  gadget G*", &reg.graph);
    println!(
        "  G* is {}-regular: {}",
        reg.delta,
        reg.graph.is_regular(reg.delta)
    );
    let lifted = reg.lift_partition(&partition);
    println!(
        "  lifted partition covers G*: {} ({} triangles)",
        is_triangle_partition(&reg.graph, &lifted),
        lifted.len()
    );

    // A NO instance: C6 (even degrees, m divisible by 3, triangle-free).
    let c6 = generators::cycle(6);
    describe("\nC6 (NO instance)", &c6);
    println!("  EPT solvable: {}", ept_solve(&c6).is_some());
    let reg6 = regularize(&c6);
    describe("  gadget G*", &reg6.graph);
    println!(
        "  G* EPT solvable: {} (must remain NO)",
        ept_solve(&reg6.graph).is_some()
    );

    println!("\n=== Theorem 7: regular EPT -> KEPRG (k = 3, L = m) ===\n");
    let octahedron = Graph::from_edges(
        6,
        &[
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
        ],
    );
    for (name, g) in [
        ("K3", generators::cycle(3)),
        ("octahedron K_{2,2,2}", octahedron),
        ("C6", generators::cycle(6)),
        ("K4", generators::complete(4)),
    ] {
        let inst = keprg_from_regular_ept(&g);
        let opt = exact_minimum(&inst.graph, inst.k);
        println!(
            "{name:<22}: m = {:>2}, optimal SADM cost at k=3 is {:>2} -> KEPRG {} \
             (triangle partition {}; equivalence holds: {})",
            inst.budget,
            opt,
            if opt <= inst.budget { "YES" } else { "NO " },
            if ept_solve(&g).is_some() {
                "exists"
            } else {
                "none"
            },
            verify_theorem7_equivalence(&g),
        );
    }

    // Bonus: a big guaranteed-YES family via Steiner triple systems.
    println!("\nSteiner triple systems certify K_n YES instances at k = 3:");
    for n in [9usize, 15] {
        let sts = generators::steiner_triple_system(n).unwrap();
        let kn = generators::complete(n);
        let triples: Vec<[NodeId; 3]> = sts
            .iter()
            .map(|t| [NodeId(t[0]), NodeId(t[1]), NodeId(t[2])])
            .collect();
        println!(
            "  K{n}: STS({n}) has {} triples; valid triangle partition: {}",
            sts.len(),
            is_triangle_partition(&kn, &triples)
        );
    }
}
