//! Drive groomd in-process: a mixed-workload batch (UPSR, budgeted,
//! multi-ring) through the socket-free [`grooming_service::Client`], then
//! the final stats snapshot.
//!
//! ```text
//! cargo run --release -p grooming-service --example service_demo
//! ```
//!
//! The multi-ring item is the reason this demo uses the in-process client:
//! gateway topologies have no wire encoding, so a TCP client could not
//! submit one — but the service solves any [`grooming::solve::Instance`].

use grooming::solve::Instance;
use grooming_graph::generators;
use grooming_service::{Client, ItemOutcome, RequestOptions, Service, ServiceConfig};
use grooming_sonet::demand::DemandSet;
use grooming_sonet::multiring::{rn, MultiRingNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // `ServiceConfig` is non_exhaustive: built by mutating the default.
    #[allow(clippy::field_reassign_with_default)]
    let config = {
        let mut config = ServiceConfig::default();
        config.workers = 2;
        config.master_seed = 7;
        config
    };
    let service = Service::start(config);
    let mut client = Client::new(&service);

    // A two-ring network bridged by one gateway pair.
    let mut network = MultiRingNetwork::new(vec![8, 6]);
    network.add_gateway(rn(0, 0), rn(1, 0));
    let cross_ring = vec![
        (rn(0, 2), rn(1, 3)),
        (rn(0, 5), rn(1, 1)),
        (rn(0, 1), rn(0, 6)),
        (rn(1, 2), rn(1, 4)),
    ];

    let mut rng = StdRng::seed_from_u64(11);
    let graph = generators::gnm(12, 26, &mut rng);
    let items = vec![
        Instance::ring(DemandSet::random(10, 20, &mut rng), 4),
        Instance::budgeted(graph, 4, 8),
        Instance::multi_ring(network, cross_ring, 4),
    ];
    let labels = [
        "upsr ring (n=10, m=20, k=4)",
        "budgeted (B=8)",
        "multi-ring (8+6 nodes)",
    ];

    println!(
        "groomd demo: {} worker(s), mixed batch of {} items",
        service.workers(),
        items.len()
    );
    let response = client
        .solve_batch(items, RequestOptions::default())
        .expect("batch admitted");

    for (label, outcome) in labels.iter().zip(&response.items) {
        match outcome {
            ItemOutcome::Solved {
                plan,
                timed_out,
                cancelled,
            } => println!(
                "  {label:<28} {} SADMs on {} wavelength(s){}{}",
                plan.sadm_cost(),
                plan.wavelengths(),
                if *timed_out { " (timed out)" } else { "" },
                if *cancelled { " (cancelled)" } else { "" },
            ),
            ItemOutcome::Failed { error } => println!("  {label:<28} failed: {error}"),
        }
    }

    let snapshot = service.shutdown();
    let c = &snapshot.counters;
    println!(
        "stats: {} request(s), {} item(s) completed, {} failed, {} timed out; \
         {} solve attempt(s), {} swap(s) evaluated",
        c.accepted_requests,
        c.completed_items,
        c.failed_items,
        c.timed_out_items,
        snapshot.solve.attempts,
        snapshot.solve.swaps_evaluated
    );
}
