//! A metro mesh planned end to end: route, groom, and hit the wall.
//!
//! A 5×5 grid of offices carries random OC-3 demands. Each demand is
//! routed over up to three shortest paths (least-loaded wins), the routed
//! demands are groomed into OC-48 wavelengths with the paper's algorithm,
//! and the plan is priced against the combinatorial SADM lower bound.
//!
//! The second act gives the four central offices finite add/drop ports and
//! switching capacity — real metro cores are the scarce resource — and
//! raises the offered load until the capacity-repair pass starts blocking
//! demands, printing the blocking curve a network planner would read off.
//!
//! Run with: `cargo run -p grooming --example mesh_metro`

use grooming::algorithm::Algorithm;
use grooming::solve::{Instance, Plan, SolveContext, Solver};
use grooming_graph::generators;
use grooming_graph::spanning::TreeStrategy;
use grooming_graph::topology::{NodeCaps, Topology};
use grooming_sonet::demand::DemandSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The four central offices of the 5×5 grid.
const CORE: [usize; 4] = [6, 8, 16, 18];

fn solve_mesh(topology: &Topology, load: usize, k: usize) -> (Plan, u64) {
    let mut rng = StdRng::seed_from_u64(7 + load as u64);
    let demands = DemandSet::random(topology.num_nodes(), load, &mut rng);
    let mut ctx = SolveContext::seeded(2026);
    let sol = Algorithm::SpanTEulerRefined(TreeStrategy::Bfs)
        .solve(&Instance::mesh(topology.clone(), demands, k, 3), &mut ctx)
        .expect("the grid is connected; every demand has a route");
    (sol.plan, ctx.stats().lower_bound)
}

fn main() {
    let grid = generators::grid(5, 5);
    let n = grid.num_nodes();
    let m = grid.num_edges();
    let k = 16; // OC-3 tributaries on OC-48 wavelengths

    // Act one: an uncapacitated mesh. Routing spreads load over the grid,
    // grooming minimizes SADMs, and the plan is priced against the bound.
    let topology = Topology::uniform(grid.clone());
    let load = 60;
    let (plan, lower_bound) = solve_mesh(&topology, load, k);
    let Plan::Mesh {
        outcome,
        routes,
        blocked,
        max_link_load,
        ..
    } = plan
    else {
        unreachable!("mesh instances yield mesh plans");
    };
    let hops: usize = routes.iter().map(|r| r.num_hops()).sum();
    println!("metro mesh: 5x5 grid ({n} offices, {m} links), {load} demands, k = {k}\n");
    println!(
        "routed: {} demands over {} total hops (mean {:.2}), max link load {max_link_load}",
        routes.len(),
        hops,
        hops as f64 / routes.len() as f64,
    );
    println!(
        "groomed: {} SADMs on {} wavelengths (lower bound {lower_bound}, gap {}), 0 blocked",
        outcome.report.sadm_total,
        outcome.report.wavelengths,
        outcome.report.sadm_total as u64 - lower_bound,
    );
    assert!(blocked.is_empty(), "uncapacitated meshes never block");

    // Act two: the core offices get finite hardware and the offered load
    // climbs. Blocking begins once the repair pass runs out of room.
    let mut caps = vec![NodeCaps::UNLIMITED; n];
    for &c in &CORE {
        caps[c] = NodeCaps::new(3, 4);
    }
    let capacitated = Topology::new(grid, vec![1; m], caps);
    println!("\ncapacitated core (offices {CORE:?}: 3 ports, 4 transits each):\n");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>12}",
        "load", "blocked", "rate", "SADMs", "wavelengths"
    );
    for load in [40, 80, 120, 160] {
        let (plan, _) = solve_mesh(&capacitated, load, k);
        let Plan::Mesh {
            outcome, blocked, ..
        } = plan
        else {
            unreachable!("mesh instances yield mesh plans");
        };
        println!(
            "{:>8} {:>8} {:>9.1}% {:>8} {:>12}",
            load,
            blocked.len(),
            100.0 * blocked.len() as f64 / load as f64,
            outcome.report.sadm_total,
            outcome.report.wavelengths,
        );
    }
    println!("\nevery carried demand still fits its caps: the repair pass blocks,");
    println!("it never over-subscribes an office.");
}
