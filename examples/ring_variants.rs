//! Ring-architecture study: UPSR vs BLSR, plus a protection fire drill.
//!
//! The paper assumes a UPSR, where a symmetric pair consumes one capacity
//! unit on *every* span — simple, fully protected, but capacity-hungry. A
//! BLSR routes each demand the short way and reuses capacity spatially.
//! This example quantifies the difference on the same demand set, then
//! runs failure drills on the UPSR side.
//!
//! Run with: `cargo run -p grooming --example ring_variants`

use grooming::algorithm::Algorithm;
use grooming::pipeline::groom;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::blsr::{groom_blsr, BlsrRing};
use grooming_sonet::demand::DemandSet;
use grooming_sonet::protection::{simulate, Failure};
use grooming_sonet::ring::{RingArc, UpsrRing};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 16;
    let k = 16;
    let mut rng = StdRng::seed_from_u64(42);
    let demands = DemandSet::random(n, 48, &mut rng);
    println!(
        "{n}-node ring, {} symmetric demand pairs, grooming factor k = {k}\n",
        demands.len()
    );

    // UPSR: the paper's algorithm.
    let upsr = groom(
        &demands,
        k,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        &mut rng,
    )
    .unwrap();
    println!(
        "UPSR (SpanT_Euler)      : {:>3} SADMs on {:>2} wavelengths",
        upsr.report.sadm_total, upsr.report.wavelengths
    );

    // BLSR: shortest-path routing, per-span capacity.
    let blsr = groom_blsr(BlsrRing::new(n), &demands, k);
    println!(
        "BLSR (greedy, routed)   : {:>3} SADMs on {:>2} wavelengths",
        blsr.sadm_count(),
        blsr.num_wavelengths()
    );
    println!(
        "\nThe BLSR's spatial reuse saves wavelengths; the UPSR buys dedicated\n\
         1+1 protection with them. Fire drill on the UPSR side:\n"
    );

    // Protection drill: cut every span once.
    let ring = UpsrRing::new(n);
    let mut max_switched = 0usize;
    for span in ring.arcs() {
        let rep = simulate(&ring, &demands, &Failure::single(span));
        assert!(rep.fully_survivable());
        max_switched = max_switched.max(rep.switched);
    }
    println!(
        "single-span cuts: all {} spans survivable; worst case {} of {} directed\n\
         demands switch to the protection ring (hitless for the rest)",
        n,
        max_switched,
        2 * demands.len()
    );

    // Double cut: the one failure class a single ring cannot absorb.
    let rep = simulate(
        &ring,
        &demands,
        &Failure::double(RingArc { from: 0 }, RingArc { from: n as u32 / 2 }),
    );
    println!(
        "double cut (spans 0 and {}): {} directed demands lost, {} switched, {} untouched",
        n / 2,
        rep.lost,
        rep.switched,
        rep.working
    );
}
