//! Dynamic provisioning: demands arrive and churn over quarters; the
//! operator grooms each immediately, and each maintenance window
//! warm-starts from the previous plan instead of re-grooming from
//! scratch — only the parts the quarter's delta touched get repaired.
//!
//! Run with: `cargo run -p grooming --example dynamic_provisioning`

use grooming::algorithm::Algorithm;
use grooming::online::OnlineGroomer;
use grooming::solve::{DemandDelta, Instance, Plan, SolveContext, Solver};
use grooming_graph::ids::NodeId;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::cost::CostModel;
use grooming_sonet::demand::{DemandPair, DemandSet};
use grooming_sonet::rates::OcRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 20;
    let k = OcRate::Oc48.grooming_factor(OcRate::Oc3).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut groomer = OnlineGroomer::new(n, k);
    let model = CostModel::default_for(OcRate::Oc48);
    let algo = Algorithm::SpanTEulerRefined(TreeStrategy::Bfs);

    println!("20-node OC-48 ring, OC-3 demands churning over 8 quarters (k = {k})\n");
    println!(
        "{:>8} {:>9} {:>12} {:>11} {:>14} {:>14}",
        "quarter", "demands", "online SADM", "warm SADM", "parts fixed", "SADMs moved"
    );

    // The planned-side demand mirror, kept in the solver's numbering:
    // removals retire the earliest surviving occurrence, survivors keep
    // their relative order, additions append.
    let mut pairs: Vec<DemandPair> = Vec::new();
    for _ in 0..30 {
        let p = random_pair(n, &mut rng);
        groomer.add(p);
        pairs.push(p);
    }

    // Quarter 0: groom the opening snapshot cold, once.
    let sol = algo
        .solve(
            &Instance::ring(demand_set(n, &pairs), k),
            &mut SolveContext::seeded(99),
        )
        .unwrap();
    let mut prior_plan = sol.plan.partition().expect("ring plan").clone();

    for quarter in 1..=8 {
        // ~12 demands arrive, ~5 churn out.
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for _ in 0..12 {
            let p = random_pair(n, &mut rng);
            groomer.add(p);
            added.push(p);
        }
        let mut pool: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..5 {
            let j = rng.gen_range(0..pool.len());
            let p = pairs[pool.swap_remove(j)];
            groomer.remove(p);
            removed.push(p);
        }
        let delta = DemandDelta::new(added, removed);
        let next_pairs = apply_delta(&pairs, &delta);

        // The maintenance window: warm-start from last quarter's plan and
        // repair only what this quarter's delta touched.
        let sol = algo
            .solve(
                &Instance::reconfigure(demand_set(n, &pairs), prior_plan, delta, k),
                &mut SolveContext::seeded(99 + quarter),
            )
            .unwrap();
        let Plan::Reconfigure {
            outcome,
            parts_repaired,
            sadms_moved,
        } = sol.plan
        else {
            unreachable!("reconfigure instances yield reconfigure plans");
        };
        println!(
            "{:>8} {:>9} {:>12} {:>11} {:>14} {:>14}",
            quarter,
            next_pairs.len(),
            groomer.sadm_count(),
            outcome.report.sadm_total,
            parts_repaired,
            sadms_moved,
        );
        if quarter == 8 {
            println!(
                "\nwarm-groomed equipment bill: {}",
                model.evaluate(&outcome.report)
            );
            println!(
                "online (never rearranged):   {}",
                model.evaluate(&groomer.assignment().report())
            );
        }
        pairs = next_pairs;
        prior_plan = outcome.partition;
    }
    println!(
        "\nEach window repairs a handful of parts instead of re-grooming all of\n\
         them: the plan keeps pace with churn at a fraction of the solve cost,\n\
         and the untouched wavelengths never change — no needless re-patching."
    );
}

fn random_pair(n: usize, rng: &mut StdRng) -> DemandPair {
    let a = rng.gen_range(0..n as u32);
    let mut b = rng.gen_range(0..n as u32);
    while b == a {
        b = rng.gen_range(0..n as u32);
    }
    DemandPair::new(NodeId(a), NodeId(b))
}

fn demand_set(n: usize, pairs: &[DemandPair]) -> DemandSet {
    let mut s = DemandSet::new(n);
    for p in pairs {
        s.add(p.lo(), p.hi());
    }
    s
}

/// Applies the delta with the solver's numbering so the chained plan's
/// edge ids always index the snapshot we hand to the next warm start.
fn apply_delta(pairs: &[DemandPair], delta: &DemandDelta) -> Vec<DemandPair> {
    use std::collections::HashMap;
    let mut to_remove: HashMap<DemandPair, usize> = HashMap::new();
    for &p in &delta.removed {
        *to_remove.entry(p).or_insert(0) += 1;
    }
    let mut next = Vec::with_capacity(pairs.len() + delta.added.len());
    for &p in pairs {
        match to_remove.get_mut(&p) {
            Some(c) if *c > 0 => *c -= 1,
            _ => next.push(p),
        }
    }
    next.extend_from_slice(&delta.added);
    next
}
