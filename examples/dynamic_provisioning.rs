//! Dynamic provisioning: demands arrive over months; the operator grooms
//! each immediately (no rearrangement) and periodically evaluates what a
//! maintenance-window re-groom would save.
//!
//! Run with: `cargo run -p grooming --example dynamic_provisioning`

use grooming::algorithm::Algorithm;
use grooming::online::OnlineGroomer;
use grooming::solve::{Instance, Plan, SolveContext, Solver};
use grooming_graph::ids::NodeId;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::cost::CostModel;
use grooming_sonet::demand::DemandPair;
use grooming_sonet::rates::OcRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 20;
    let k = OcRate::Oc48.grooming_factor(OcRate::Oc3).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut groomer = OnlineGroomer::new(n, k);
    let model = CostModel::default_for(OcRate::Oc48);

    println!("20-node OC-48 ring, OC-3 demands arriving over 8 quarters (k = {k})\n");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>14} {:>16}",
        "quarter", "demands", "online SADM", "regroomed", "online waves", "regroom saves"
    );

    let mut total = 0usize;
    for quarter in 1..=8 {
        // Traffic grows ~15 demands per quarter.
        for _ in 0..15 {
            let a = rng.gen_range(0..n as u32);
            let mut b = rng.gen_range(0..n as u32);
            while b == a {
                b = rng.gen_range(0..n as u32);
            }
            groomer.add(DemandPair::new(NodeId(a), NodeId(b)));
            total += 1;
        }
        let mut ctx = SolveContext::seeded(99 + quarter);
        let sol = Algorithm::SpanTEuler(TreeStrategy::Bfs)
            .solve(&Instance::online(&groomer), &mut ctx)
            .unwrap();
        let Plan::OnlineRearrange {
            online_sadms: online,
            outcome,
        } = sol.plan
        else {
            unreachable!("online instances yield rearrange plans");
        };
        let offline = outcome.report.sadm_total;
        let online_cost = model.evaluate(&groomer.assignment().report());
        println!(
            "{:>8} {:>9} {:>12} {:>12} {:>14} {:>15.0}%",
            quarter,
            total,
            online,
            offline,
            groomer.num_wavelengths(),
            100.0 * (online as f64 / offline as f64 - 1.0),
        );
        if quarter == 8 {
            println!("\nfinal online equipment bill: {online_cost}");
        }
    }
    println!(
        "\nThe drift grows with load: each quarter of no-rearrangement locks in\n\
         more fragmentation. This is why carriers schedule re-grooming windows."
    );
}
