//! Dynamic provisioning: groomsim drives Poisson arrivals and departures
//! over 8 quarters; the operator grooms each immediately (the online,
//! never-rearranged policy) while each maintenance window warm-starts
//! from the previous plan — only the parts the event touched get
//! repaired. Both policies see the *same* simulated trace, so the SADM
//! gap is purely the policy difference.
//!
//! Run with: `cargo run -p grooming-sim --example dynamic_provisioning`

use grooming::online::OnlineGroomer;
use grooming::portfolio::DEFAULT_PORTFOLIO;
use grooming::solve::{Instance, Plan, PortfolioSolver, SolveConfig, SolveContext, Solver};
use grooming_sim::{run_recording, AppliedEvent, Scenario};
use grooming_sonet::cost::CostModel;
use grooming_sonet::rates::OcRate;

const QUARTERS: u64 = 8;

fn main() {
    let n = 20;
    let k = OcRate::Oc48.grooming_factor(OcRate::Oc3).unwrap();
    let model = CostModel::default_for(OcRate::Oc48);

    // One year of churn on a 20-node metro ring: four independent Poisson
    // demand streams offering 12 Erlangs in aggregate, simulated by
    // groomsim and replayed here event by event.
    let mut scenario = Scenario::ring(n, k).with_offered_erlangs(12.0);
    scenario.horizon = 40_000;
    scenario.master_seed = 99;
    let quarter_len = scenario.horizon / QUARTERS;
    let sim = run_recording(&scenario);

    println!(
        "20-node OC-48 ring, OC-3 demands arriving and departing over {QUARTERS} quarters \
         (k = {k})"
    );
    println!(
        "groomsim trace: {} offered, {} admitted, {} blocked over {} ticks\n",
        sim.report.offered, sim.report.admitted, sim.report.blocked, sim.report.end_time
    );
    println!(
        "{:>8} {:>9} {:>12} {:>11} {:>14} {:>14}",
        "quarter", "demands", "online SADM", "warm SADM", "parts fixed", "SADMs moved"
    );

    // Replay the recorded epochs: each is a self-contained warm-start
    // instance (prior plan + one-event delta), solved with the same
    // rearrange budget the engine used, so the warm column reproduces the
    // engine's chain exactly.
    // `SolveConfig` is non_exhaustive: built by mutating the default.
    #[allow(clippy::field_reassign_with_default)]
    let config = {
        let mut config = SolveConfig::default();
        config.rearrange_budget = scenario.rearrange_budget;
        config
    };
    let mut ctx = SolveContext::seeded(99).with_config(config);
    let solver = PortfolioSolver {
        portfolio: &DEFAULT_PORTFOLIO,
        restarts: 0,
        jobs: 1,
        master_seed: Some(scenario.master_seed),
    };

    let mut groomer = OnlineGroomer::new(n, k);
    let mut epoch = 0usize;
    let mut active = 0usize;
    let mut warm_sadms = 0u64;
    let mut warm_report = None;
    // The equipment bills are compared at the end of the arrival window —
    // the busy-season peak — not after the queue drains to empty.
    let mut peak_bills = None;

    // Per-quarter aggregates: the state snapshot at the quarter's last
    // event, plus the repair work done within it.
    let mut rows = vec![(0usize, 0usize, 0u64, 0u64, 0u64); QUARTERS as usize];

    for event in &sim.applied {
        let (time, quarter_stats) = match *event {
            AppliedEvent::Admitted { time, pair, .. } => {
                let (report, parts_repaired, sadms_moved) =
                    solve_epoch(&solver, &sim.epochs[epoch], &mut ctx);
                epoch += 1;
                warm_sadms = report.sadm_total as u64;
                warm_report = Some(report);
                groomer.add(pair);
                active += 1;
                (time, (parts_repaired, sadms_moved))
            }
            AppliedEvent::Blocked { time, .. } => {
                // The engine solved this epoch and discarded the plan; the
                // next epoch's embedded prior already reflects that, so
                // the replay just skips it.
                epoch += 1;
                (time, (0, 0))
            }
            AppliedEvent::Departed { time, pair } => {
                let (report, parts_repaired, sadms_moved) =
                    solve_epoch(&solver, &sim.epochs[epoch], &mut ctx);
                epoch += 1;
                warm_sadms = report.sadm_total as u64;
                warm_report = Some(report);
                groomer.remove(pair);
                active -= 1;
                (time, (parts_repaired, sadms_moved))
            }
        };
        // Departures drain past the horizon; they land in the last quarter.
        let q = ((time / quarter_len).min(QUARTERS - 1)) as usize;
        let row = &mut rows[q];
        (row.0, row.1, row.2) = (active, groomer.sadm_count(), warm_sadms);
        row.3 += quarter_stats.0;
        row.4 += quarter_stats.1;
        if time < scenario.horizon {
            if let Some(report) = &warm_report {
                peak_bills = Some((report.clone(), groomer.assignment().report()));
            }
        }
    }
    assert_eq!(epoch, sim.epochs.len(), "every recorded epoch is consumed");

    // Quarters without events inherit the previous snapshot.
    let mut carry = (0usize, 0usize, 0u64);
    for (i, row) in rows.iter_mut().enumerate() {
        if row.3 == 0 && row.4 == 0 && (row.0, row.1, row.2) == (0, 0, 0) && i > 0 {
            (row.0, row.1, row.2) = carry;
        }
        carry = (row.0, row.1, row.2);
        println!(
            "{:>8} {:>9} {:>12} {:>11} {:>14} {:>14}",
            i + 1,
            row.0,
            row.1,
            row.2,
            row.3,
            row.4
        );
    }

    if let Some((warm, online)) = peak_bills {
        println!("\nat the busy-season peak (t = {}):", scenario.horizon);
        println!("warm-groomed equipment bill: {}", model.evaluate(&warm));
        println!("online (never rearranged):   {}", model.evaluate(&online));
    }
    println!(
        "\nBoth policies provisioned the identical groomsim trace. The warm\n\
         chain repairs a handful of parts per event within its rearrange\n\
         budget, consolidating what churn fragments; the online groomer,\n\
         which never moves an installed circuit, strands capacity on\n\
         wavelengths the warm chain has long since reclaimed."
    );
}

/// Solves one recorded reconfigure epoch and unwraps the plan arm.
fn solve_epoch(
    solver: &PortfolioSolver<'_>,
    instance: &Instance,
    ctx: &mut SolveContext,
) -> (grooming_sonet::stats::RingCostReport, u64, u64) {
    let solution = solver
        .solve(instance, ctx)
        .expect("recorded epochs are solvable by construction");
    match solution.plan {
        Plan::Reconfigure {
            outcome,
            parts_repaired,
            sadms_moved,
        } => (outcome.report, parts_repaired, sadms_moved),
        _ => unreachable!("reconfigure instances yield reconfigure plans"),
    }
}
