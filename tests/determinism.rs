//! Determinism regression tests: the same seed must produce byte-identical
//! results across runs, for every algorithm — reproducibility is what makes
//! EXPERIMENTS.md's numbers auditable.

// The deprecated wrappers stay covered here until they are removed: their
// determinism contract must hold for as long as they exist.
#![allow(deprecated)]

use grooming::algorithm::Algorithm;
use grooming::budget::groom_with_budget;
use grooming::pipeline::groom;
use grooming::portfolio::{best_of_seeded, PortfolioEngine, DEFAULT_PORTFOLIO};
use grooming_graph::generators;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::demand::DemandSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Goldschmidt,
        Algorithm::Brauner,
        Algorithm::WangGuIcc06,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        Algorithm::SpanTEuler(TreeStrategy::Dfs),
        Algorithm::SpanTEuler(TreeStrategy::RandomKruskal),
        Algorithm::SpanTEulerRefined(TreeStrategy::Bfs),
        Algorithm::CliqueFirst,
        Algorithm::DenseFirst,
    ]
}

#[test]
fn same_seed_same_partition() {
    let demands = DemandSet::random(20, 60, &mut StdRng::seed_from_u64(5));
    for algo in all_algorithms() {
        let a = groom(&demands, 8, algo, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = groom(&demands, 8, algo, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(
            a.partition.parts(),
            b.partition.parts(),
            "{algo} must be deterministic under a fixed seed"
        );
        assert_eq!(a.report.sadm_total, b.report.sadm_total);
    }
}

#[test]
fn same_seed_same_generators() {
    for seed in [0u64, 1, 42] {
        let g1 = generators::gnm(36, 216, &mut StdRng::seed_from_u64(seed));
        let g2 = generators::gnm(36, 216, &mut StdRng::seed_from_u64(seed));
        assert_eq!(g1.edge_list(), g2.edge_list());
        let r1 = generators::random_regular(36, 7, &mut StdRng::seed_from_u64(seed));
        let r2 = generators::random_regular(36, 7, &mut StdRng::seed_from_u64(seed));
        assert_eq!(r1.edge_list(), r2.edge_list());
        let d1 = DemandSet::locality(20, 40, 2.0, &mut StdRng::seed_from_u64(seed));
        let d2 = DemandSet::locality(20, 40, 2.0, &mut StdRng::seed_from_u64(seed));
        assert_eq!(d1.pairs(), d2.pairs());
    }
}

#[test]
fn regular_euler_is_seed_free_deterministic() {
    // No RNG input at all: two calls must agree.
    let g = generators::random_regular(36, 7, &mut StdRng::seed_from_u64(3));
    let a = grooming::regular_euler(&g, 16).unwrap();
    let b = grooming::regular_euler(&g, 16).unwrap();
    assert_eq!(a.parts(), b.parts());
}

#[test]
fn budget_layer_is_deterministic() {
    let g = generators::gnm(18, 50, &mut StdRng::seed_from_u64(6));
    let a = groom_with_budget(
        &g,
        8,
        7,
        Algorithm::CliqueFirst,
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();
    let b = groom_with_budget(
        &g,
        8,
        7,
        Algorithm::CliqueFirst,
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();
    assert_eq!(a.parts(), b.parts());
}

#[test]
fn portfolio_result_is_independent_of_job_count() {
    // The tentpole guarantee: one master seed fixes the full
    // `PortfolioResult` (winning partition, per-attempt costs, seeds) no
    // matter how many workers execute the plan.
    let g = generators::gnm(24, 90, &mut StdRng::seed_from_u64(11));
    for master in [0u64, 41, 0xFEED_FACE] {
        let baseline = best_of_seeded(&g, 6, &DEFAULT_PORTFOLIO, 2, master, 1);
        for jobs in [2usize, 3, 7] {
            let parallel = best_of_seeded(&g, 6, &DEFAULT_PORTFOLIO, 2, master, jobs);
            assert_eq!(
                baseline.fingerprint(),
                parallel.fingerprint(),
                "jobs = {jobs} diverged from sequential at master seed {master}"
            );
        }
    }
}

#[test]
fn portfolio_result_is_independent_of_entry_order() {
    // Attempt seeds derive from each algorithm's stable id, not its index
    // in the portfolio slice, so shuffling the lineup cannot change any
    // attempt (and therefore cannot change the winner).
    let g = generators::gnm(24, 90, &mut StdRng::seed_from_u64(11));
    let mut reversed: Vec<Algorithm> = DEFAULT_PORTFOLIO.to_vec();
    reversed.reverse();
    let a = best_of_seeded(&g, 6, &DEFAULT_PORTFOLIO, 2, 99, 1);
    let b = best_of_seeded(&g, 6, &reversed, 2, 99, 4);
    assert_eq!(a.partition.parts(), b.partition.parts());
    assert_eq!(a.cost, b.cost);
    assert_eq!((a.winner, a.winner_restart), (b.winner, b.winner_restart));
}

#[test]
fn portfolio_restart_streams_are_self_contained() {
    // Raising the restart count adds attempts without perturbing the ones
    // already in the plan: attempt (algo, r) draws from its own derived
    // stream, never from a shared sequence another attempt advances.
    let g = generators::gnm(24, 90, &mut StdRng::seed_from_u64(11));
    let small = PortfolioEngine::new(&DEFAULT_PORTFOLIO)
        .restarts(2)
        .master_seed(7)
        .run(&g, 6);
    let large = PortfolioEngine::new(&DEFAULT_PORTFOLIO)
        .restarts(5)
        .master_seed(7)
        .jobs(3)
        .run(&g, 6);
    for a in &small.attempts {
        let same = large
            .attempts
            .iter()
            .find(|b| b.algorithm == a.algorithm && b.restart == a.restart)
            .expect("shared attempt present in the larger plan");
        assert_eq!(a.seed, same.seed);
        assert_eq!(a.cost, same.cost);
        assert_eq!(a.wavelengths, same.wavelengths);
    }
}

#[test]
fn different_seeds_usually_differ() {
    // Sanity check the RNG is actually consulted by the randomized
    // strategies: at least one of several seeds must produce a different
    // partition than seed 0.
    let demands = DemandSet::random(20, 60, &mut StdRng::seed_from_u64(5));
    let base = groom(
        &demands,
        8,
        Algorithm::SpanTEuler(TreeStrategy::RandomKruskal),
        &mut StdRng::seed_from_u64(0),
    )
    .unwrap();
    let any_differs = (1..6u64).any(|s| {
        let other = groom(
            &demands,
            8,
            Algorithm::SpanTEuler(TreeStrategy::RandomKruskal),
            &mut StdRng::seed_from_u64(s),
        )
        .unwrap();
        other.partition.parts() != base.partition.parts()
    });
    assert!(any_differs, "randomized strategy never varied across seeds");
}
