//! Integration tests for groomd: the determinism contract, explicit
//! backpressure, deadline behaviour, and the drain-on-shutdown guarantee.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use grooming::portfolio::DEFAULT_PORTFOLIO;
use grooming::solve::{Instance, PortfolioSolver, SolveContext, Solver};
use grooming_graph::generators;
use grooming_graph::ids::NodeId;
use grooming_service::{
    estimated_cost, instance_digest, item_seed, Client, ItemOutcome, Request, Service,
    ServiceConfig, SubmitError,
};
use grooming_sonet::blsr::BlsrRing;
use grooming_sonet::demand::DemandSet;
use grooming_sonet::weighted::WeightedDemandSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

// `ServiceConfig` is non_exhaustive, so outside its crate it can only be
// built by mutating the default.
#[allow(clippy::field_reassign_with_default)]
fn config(workers: usize) -> ServiceConfig {
    let mut config = ServiceConfig::default();
    config.workers = workers;
    config.master_seed = 42;
    config
}

/// A mixed workload touching every wire-representable instance kind.
fn mixed_items() -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::gnm(10, 18, &mut rng);
    let demands = DemandSet::random(9, 14, &mut rng);
    let mut weighted = WeightedDemandSet::new(6);
    weighted.add(NodeId(0), NodeId(3), 3);
    weighted.add(NodeId(1), NodeId(4), 2);
    weighted.add(NodeId(2), NodeId(5), 1);
    vec![
        Instance::upsr(graph.clone(), 4),
        Instance::ring(demands.clone(), 3),
        Instance::budgeted(graph, 4, 6),
        Instance::weighted(weighted, 4),
        Instance::OnlineRearrange {
            demands: demands.clone(),
            k: 3,
            online_sadms: 20,
        },
        Instance::blsr(BlsrRing::new(9), demands, 3),
    ]
}

#[test]
fn transcripts_are_byte_identical_across_worker_counts() {
    let mut transcripts = Vec::new();
    for workers in [1, 4] {
        let service = Service::start(config(workers));
        let mut client = Client::new(&service);
        let transcript = client
            .solve_transcript(mixed_items(), Default::default())
            .unwrap();
        service.shutdown();
        transcripts.push(transcript);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "worker count leaked into the response transcript"
    );
    // And the transcript is a real, fully-solved one, not a pile of
    // coincidentally-equal errors.
    assert!(transcripts[0].starts_with("RESULT 1 count=6\nPLAN 0 sadms="));
    assert!(!transcripts[0].contains("ERROR"));
    assert!(transcripts[0].ends_with("END\n"));
}

/// A reconfigure workload: cold-solve a snapshot once, then warm-start it
/// with a small add/remove delta.
fn reconfigure_items() -> Vec<Instance> {
    use grooming::algorithm::Algorithm;
    use grooming::solve::DemandDelta;
    use grooming_graph::spanning::TreeStrategy;
    use grooming_sonet::demand::DemandPair;

    let mut rng = StdRng::seed_from_u64(11);
    let demands = DemandSet::random(12, 24, &mut rng);
    let prior = Algorithm::SpanTEulerRefined(TreeStrategy::Bfs)
        .solve(
            &Instance::ring(demands.clone(), 4),
            &mut SolveContext::seeded(5),
        )
        .unwrap()
        .plan
        .partition()
        .expect("ring plan")
        .clone();
    let delta = DemandDelta::new(
        vec![
            DemandPair::new(NodeId(0), NodeId(7)),
            DemandPair::new(NodeId(3), NodeId(9)),
        ],
        vec![demands.pairs()[0], demands.pairs()[5]],
    );
    vec![
        Instance::reconfigure(demands.clone(), prior.clone(), delta, 4),
        // An empty delta rides along: its plan must echo the prior.
        Instance::reconfigure(demands, prior, DemandDelta::default(), 4),
    ]
}

/// RECONFIGURE solves are deterministic-given-input like BATCH: warm
/// repair never consults the solver's RNG, so transcripts cannot depend
/// on the worker count.
#[test]
fn reconfigure_transcripts_are_byte_identical_across_worker_counts() {
    let mut transcripts = Vec::new();
    for workers in [1, 4] {
        let service = Service::start(config(workers));
        let mut client = Client::new(&service);
        let transcript = client
            .solve_transcript(reconfigure_items(), Default::default())
            .unwrap();
        service.shutdown();
        transcripts.push(transcript);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "worker count leaked into the reconfigure transcript"
    );
    assert!(transcripts[0].starts_with("RESULT 1 count=2\nPLAN 0 sadms="));
    assert!(!transcripts[0].contains("ERROR"));
    assert!(transcripts[0].ends_with("END\n"));
}

#[test]
fn overload_is_rejected_with_observed_depth() {
    let service = Service::start({
        let mut c = config(1);
        c.queue_capacity = 4;
        c
    });
    // Hold the worker off the queue so the admission arithmetic is exact.
    service.pause();
    let small = || vec![Instance::ring(DemandSet::all_to_all(5), 3); 3];
    let ticket = service.submit(Request::batch(1, small())).unwrap();
    // 3 of 4 slots taken: another 3-item batch cannot fit — all or
    // nothing, with the observed depth in the refusal.
    match service.submit(Request::batch(2, small())) {
        Err(SubmitError::QueueFull { queue_depth, .. }) => assert_eq!(queue_depth, 3),
        other => panic!("expected QueueFull, got {:?}", other.map(|t| t.id())),
    }
    // A single item still fits; the queue is then exactly full.
    let one = service
        .submit(Request::batch(
            3,
            vec![Instance::ring(DemandSet::all_to_all(4), 3)],
        ))
        .unwrap();
    match service.submit(Request::batch(
        4,
        vec![Instance::ring(DemandSet::all_to_all(4), 3)],
    )) {
        Err(SubmitError::QueueFull { queue_depth, .. }) => assert_eq!(queue_depth, 4),
        other => panic!("expected QueueFull, got {:?}", other.map(|t| t.id())),
    }
    service.resume();
    assert_eq!(ticket.wait().items.len(), 3);
    assert_eq!(one.wait().items.len(), 1);
    let stats = service.shutdown();
    assert_eq!(stats.counters.accepted_requests, 2);
    assert_eq!(stats.counters.rejected_requests, 2);
    assert_eq!(stats.counters.completed_items, 4);
    // Post-shutdown submissions are refused, not dropped.
    match service.submit(Request::batch(5, vec![])) {
        Err(SubmitError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {:?}", other.map(|t| t.id())),
    }
}

#[test]
fn zero_deadline_returns_a_valid_best_so_far_plan() {
    let service = Service::start(config(1));
    let response = service
        .submit(Request {
            id: 1,
            items: vec![Instance::ring(
                DemandSet::random(10, 20, &mut StdRng::seed_from_u64(3)),
                4,
            )],
            deadline: Some(Duration::ZERO),
            algo: None,
        })
        .unwrap()
        .wait();
    let ItemOutcome::Solved {
        plan, timed_out, ..
    } = &response.items[0]
    else {
        panic!("expected a solved item, got {:?}", response.items[0]);
    };
    assert!(timed_out, "an already-expired deadline must be reported");
    // Best-so-far, but still a complete valid plan.
    assert!(plan.sadm_cost() > 0);
    assert!(plan.wavelengths() > 0);
    let stats = service.shutdown();
    assert_eq!(stats.counters.timed_out_items, 1);
}

#[test]
fn shutdown_under_load_drains_every_accepted_request_exactly_once() {
    let service = Service::start({
        let mut c = config(2);
        c.queue_capacity = 64;
        c
    });
    // Queue a pile of batches while the workers are held off, so shutdown
    // begins with everything still pending.
    service.pause();
    let mut tickets = Vec::new();
    for id in 1..=5 {
        let items = vec![Instance::ring(DemandSet::all_to_all(6), 3); 3];
        tickets.push(service.submit(Request::batch(id, items)).unwrap());
    }
    // Waiters on their own threads: every one must resolve.
    let resolved = Arc::new(Mutex::new(Vec::new()));
    let waiters: Vec<_> = tickets
        .into_iter()
        .map(|t| {
            let resolved = Arc::clone(&resolved);
            thread::spawn(move || {
                let response = t.wait();
                resolved
                    .lock()
                    .unwrap()
                    .push((response.id, response.items.len()));
            })
        })
        .collect();
    // Shutdown overrides the pause: the queue drains, nothing is dropped.
    let stats = service.shutdown();
    for w in waiters {
        w.join().unwrap();
    }
    let mut got = resolved.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![(1, 3), (2, 3), (3, 3), (4, 3), (5, 3)]);
    assert_eq!(stats.counters.accepted_items, 15);
    assert_eq!(stats.counters.completed_items, 15);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn service_solve_stats_equal_the_sum_of_solo_solves() {
    // The service's merged instrumentation must equal re-solving each item
    // by hand with the same derived seed — merge() loses nothing, and the
    // derivation is a pure function of (master, instance content).
    let master = 42;
    let request_id = 1;
    let items = mixed_items();
    let mut expected_attempts = 0u64;
    let mut expected_swaps = 0u64;
    for instance in items.iter() {
        let seed = item_seed(master, instance_digest(instance, None));
        let mut ctx = SolveContext::seeded(seed);
        // Exactly the solver the service runs for algo-less requests.
        PortfolioSolver {
            portfolio: &DEFAULT_PORTFOLIO,
            restarts: 0,
            jobs: 1,
            master_seed: Some(seed),
        }
        .solve(instance, &mut ctx)
        .unwrap();
        expected_attempts += ctx.stats().attempts;
        expected_swaps += ctx.stats().swaps_evaluated;
    }

    let service = Service::start(config(3));
    service
        .submit(Request::batch(request_id, items))
        .unwrap()
        .wait();
    let stats = service.shutdown();
    assert_eq!(stats.solve.attempts, expected_attempts);
    assert_eq!(stats.solve.swaps_evaluated, expected_swaps);
}

/// Every [`grooming_service::StatsSnapshot`] taken under full concurrent
/// load must balance: `accepted_items == completed_items + queue_depth +
/// in_flight`. The old implementation assembled snapshots from three
/// separately-locked pieces and could observe an item in none (or two) of
/// the three buckets.
#[test]
fn snapshots_balance_under_concurrent_load() {
    let service = Service::start({
        let mut c = config(3);
        c.queue_capacity = 512;
        c.cache_capacity = 0; // every item really solves
        c
    });
    let submitter = {
        let service = service.clone();
        thread::spawn(move || {
            let mut waiters = Vec::new();
            for id in 1..=20 {
                let items = vec![Instance::ring(DemandSet::all_to_all(7), 3); 4];
                waiters.push(service.submit(Request::batch(id, items)).unwrap());
            }
            for w in waiters {
                w.wait();
            }
        })
    };
    // Hammer snapshots the whole time work is admitted and completed.
    while !submitter.is_finished() {
        let s = service.stats();
        assert_eq!(
            s.counters.accepted_items,
            s.counters.completed_items + s.queue_depth as u64 + s.in_flight,
            "snapshot books must balance at every instant: {s:?}"
        );
    }
    submitter.join().unwrap();
    let s = service.shutdown();
    assert_eq!(s.counters.accepted_items, 80);
    assert_eq!(s.counters.completed_items, 80);
    assert_eq!(s.in_flight, 0);
    assert_eq!(s.queue_depth, 0);
    // Latency ledgers saw every item exactly once.
    assert_eq!(s.queue_wait.count(), 80);
    assert_eq!(s.solve_time.count(), 80);
}

/// Under saturation the shed policy refuses deadline-unmeetable work with
/// numbers that are a pure function of the queue contents — byte-stable
/// rejections, and exactly-once completion for everything admitted.
#[test]
fn saturation_sheds_deadline_unmeetable_work_deterministically() {
    let item = || Instance::ring(DemandSet::all_to_all(8), 4);
    let cost = estimated_cost(&item());
    let service = Service::start({
        let mut c = config(2);
        c.queue_work_capacity = cost * 4;
        c.shed_watermark = cost; // saturated after one queued item
        c.shed_cost_per_ms = 1; // 1 work unit per ms: wait == queued cost
        c
    });
    service.pause();
    let admitted = service
        .submit(Request::batch(1, vec![item(), item()]))
        .unwrap();
    // Saturated (2·cost ≥ watermark): a deadline shorter than the
    // estimated wait is shed, with the exact arithmetic in the refusal.
    let doomed = Request {
        id: 2,
        items: vec![item()],
        deadline: Some(Duration::from_millis(1)),
        algo: None,
    };
    match service.submit(doomed) {
        Err(SubmitError::Shed {
            estimated_wait_ms,
            deadline_ms,
        }) => {
            assert_eq!(estimated_wait_ms, 2 * cost);
            assert_eq!(deadline_ms, 1);
        }
        other => panic!("expected Shed, got {:?}", other.map(|t| t.id())),
    }
    // A deadline that survives the estimated wait is admitted even under
    // saturation — shedding is deadline-aware, not a hard gate …
    let patient = service
        .submit(Request {
            id: 3,
            items: vec![item()],
            deadline: Some(Duration::from_secs(3600)),
            algo: None,
        })
        .unwrap();
    // … and so is work with no deadline at all.
    let undated = service.submit(Request::batch(4, vec![item()])).unwrap();
    service.resume();
    assert_eq!(admitted.wait().items.len(), 2);
    assert_eq!(patient.wait().items.len(), 1);
    assert_eq!(undated.wait().items.len(), 1);
    let stats = service.shutdown();
    assert_eq!(stats.counters.accepted_requests, 3);
    assert_eq!(stats.counters.rejected_requests, 1);
    assert_eq!(stats.counters.shed_requests, 1);
    assert_eq!(stats.counters.completed_items, 4);
}
