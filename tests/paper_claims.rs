//! Executable checks of the paper's headline claims, at the paper's own
//! operating points (`n = 36`; `m = n^(1+d)`; `r ∈ {7, 8, 15, 16}`).
//!
//! These are statistical claims, so each test averages over seeds exactly
//! like the paper's §5 does.

use grooming::algorithm::Algorithm;
use grooming::bounds;
use grooming::regular_euler::regular_euler_detailed;
use grooming::spant_euler::spant_euler_detailed;
use grooming_graph::generators;
use grooming_graph::spanning::TreeStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 10;

fn mean_cost(algo: Algorithm, n: usize, d: f64, k: usize) -> f64 {
    let mut total = 0f64;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(n, generators::dense_ratio_edges(n, d), &mut rng);
        let p = algo.run(&g, k, &mut rng).unwrap();
        total += p.sadm_cost(&g) as f64;
    }
    total / SEEDS as f64
}

#[test]
fn claim_minimum_wavelengths_spant_euler() {
    // §3: "Our algorithm uses the minimum number ⌈|E|/k⌉ of wavelengths."
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(36, 216, &mut rng);
        for k in [2usize, 4, 16, 64] {
            let run = spant_euler_detailed(&g, k, TreeStrategy::Bfs, &mut rng);
            assert!(run.partition.uses_min_wavelengths(&g, k));
        }
    }
}

#[test]
fn claim_theorem5_bound_at_paper_scale() {
    for seed in 0..SEEDS {
        for d in [0.3f64, 0.5, 0.7] {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = generators::dense_ratio_edges(36, d);
            let g = generators::gnm(36, m, &mut rng);
            for k in [4usize, 16] {
                let run = spant_euler_detailed(&g, k, TreeStrategy::Bfs, &mut rng);
                let bound = bounds::theorem5_upper_bound(m, k, run.components_g_minus_t);
                assert!(run.partition.sadm_cost(&g) <= bound);
            }
        }
    }
}

#[test]
fn claim_spant_euler_beats_baselines_at_small_k() {
    // §5: "The performance is especially good for grooming factor being
    // relatively small values (e.g., <= 16)."
    for d in [0.3f64, 0.5, 0.7] {
        for k in [4usize, 8, 16] {
            let spant = mean_cost(Algorithm::SpanTEuler(TreeStrategy::Bfs), 36, d, k);
            for baseline in [
                Algorithm::Goldschmidt,
                Algorithm::Brauner,
                Algorithm::WangGuIcc06,
            ] {
                let other = mean_cost(baseline, 36, d, k);
                assert!(
                    spant <= other * 1.02,
                    "d={d} k={k}: SpanT_Euler {spant:.1} vs {baseline} {other:.1}"
                );
            }
        }
    }
}

#[test]
fn claim_density_crossover_of_prior_algorithms() {
    // §5: tree-based algorithms are better when sparse, the Euler-based
    // one when dense.
    let k = 16;
    let gold_sparse = mean_cost(Algorithm::Goldschmidt, 36, 0.2, k);
    let brau_sparse = mean_cost(Algorithm::Brauner, 36, 0.2, k);
    let gold_dense = mean_cost(Algorithm::Goldschmidt, 36, 0.8, k);
    let brau_dense = mean_cost(Algorithm::Brauner, 36, 0.8, k);
    // Relative ranking flips (or at least the gap closes drastically).
    let sparse_gap = brau_sparse - gold_sparse;
    let dense_gap = brau_dense - gold_dense;
    assert!(
        dense_gap < sparse_gap,
        "Euler-based must gain on tree-based with density \
         (sparse gap {sparse_gap:.1}, dense gap {dense_gap:.1})"
    );
    assert!(brau_dense < gold_dense, "Euler-based must win when dense");
}

#[test]
fn claim_regular_euler_within_theorem10_and_wins_on_regular() {
    for r in [7usize, 8, 15, 16] {
        let n = 36;
        let mut regular_total = 0f64;
        let mut best_baseline_total = 0f64;
        for seed in 0..SEEDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::random_regular(n, r, &mut rng);
            let m = g.num_edges();
            {
                let k = 8usize;
                let run = regular_euler_detailed(&g, k).unwrap();
                assert!(run.partition.uses_min_wavelengths(&g, k));
                let cost = run.partition.sadm_cost(&g) as f64;
                let bound = if r % 2 == 0 {
                    bounds::theorem10_upper_bound_even(m, k) as f64
                } else {
                    bounds::theorem10_upper_bound_odd(m, k, n, r) as f64
                };
                assert!(cost <= bound, "r={r} seed={seed}");
                regular_total += cost;
                let best = [
                    Algorithm::Goldschmidt,
                    Algorithm::Brauner,
                    Algorithm::WangGuIcc06,
                ]
                .iter()
                .map(|a| a.run(&g, k, &mut rng).unwrap().sadm_cost(&g))
                .min()
                .unwrap();
                best_baseline_total += best as f64;
            }
        }
        // "Outperforms previous algorithms in most cases": on average it
        // must at least match the best baseline.
        assert!(
            regular_total <= best_baseline_total * 1.02,
            "r={r}: Regular_Euler {regular_total:.1} vs best baseline {best_baseline_total:.1}"
        );
    }
}

#[test]
fn claim_even_r_is_structurally_easier_than_odd_r() {
    // Theorem 10's even-r bound has no +3n/(2(r+1)) term because the
    // skeleton cover has size 1 (a single Euler circuit) on connected
    // even-regular graphs, while odd r needs a matching and a multi-trail
    // cover. Check the structural quantities and the bound ordering; the
    // measured costs differ by at most the cover-size overhead.
    let (n, k) = (36, 8);
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let g7 = generators::random_regular(n, 7, &mut rng);
        let g8 = generators::random_regular(n, 8, &mut rng);
        let odd = regular_euler_detailed(&g7, k).unwrap();
        let even = regular_euler_detailed(&g8, k).unwrap();
        if grooming_graph::traversal::is_connected(&g8) {
            assert_eq!(even.cover_size, 1, "even r: one Euler circuit");
        }
        assert!(even.cover_size <= odd.cover_size.max(1));
        assert!(odd.matching_size.is_some() && even.matching_size.is_none());
        // Bound ordering at equal m (compare the formulas directly).
        let m = 126;
        assert!(
            bounds::theorem10_upper_bound_even(m, k)
                <= bounds::theorem10_upper_bound_odd(m, k, n, 7)
        );
    }
}

#[test]
fn claim_costs_never_beat_lower_bounds() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(36, 216, &mut rng);
        for k in [4usize, 16] {
            for algo in Algorithm::FIGURE4 {
                let cost = algo.run(&g, k, &mut rng).unwrap().sadm_cost(&g);
                assert!(cost >= bounds::lower_bound(&g, k));
            }
        }
    }
}
