//! Integration tests for the NP-hardness pipeline: EPT instances →
//! Lemma 6 gadget → Theorem 7 KEPRG instance → exact solvers, closing the
//! loop between the `grooming-graph` triangle machinery and the core
//! reductions.

use grooming::exact::exact_minimum;
use grooming::hardness::{keprg_from_regular_ept, regularize, verify_theorem7_equivalence};
use grooming_graph::generators;
use grooming_graph::graph::Graph;
use grooming_graph::ids::NodeId;
use grooming_graph::triangles::{ept_solve, is_triangle_partition};

fn octahedron() -> Graph {
    Graph::from_edges(
        6,
        &[
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
        ],
    )
}

#[test]
fn yes_instances_survive_the_full_reduction() {
    // EPT yes-instance -> regularize -> lifted partition covers G* ->
    // KEPRG yes at budget m.
    for g in [
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]),
        octahedron(),
    ] {
        let partition = ept_solve(&g).expect("yes instance");
        let reg = regularize(&g);
        let lifted = reg.lift_partition(&partition);
        assert!(is_triangle_partition(&reg.graph, &lifted));
        // Triangle partition => the KEPRG cost m is achievable on G*
        // (each triangle is a 3-edge part with 3 nodes). Verify by
        // computing the cost of the witness directly.
        let m = reg.graph.num_edges();
        assert_eq!(lifted.len() * 3, m);
    }
}

#[test]
fn no_instances_survive_the_full_reduction() {
    let c6 = generators::cycle(6);
    let reg = regularize(&c6);
    assert!(ept_solve(&reg.graph).is_none());
}

#[test]
fn keprg_oracle_agrees_with_triangle_oracle() {
    for g in [
        generators::cycle(3),
        generators::cycle(4),
        generators::cycle(6),
        generators::complete(4),
        octahedron(),
        generators::petersen(),
    ] {
        assert!(verify_theorem7_equivalence(&g));
    }
}

#[test]
fn sts_makes_large_yes_instances_for_kn() {
    // K9: 8-regular; STS(9) certifies KEPRG yes without the exact solver.
    let n = 9;
    let kn = generators::complete(n);
    let inst = keprg_from_regular_ept(&kn);
    assert_eq!(inst.budget, 36);
    let sts = generators::steiner_triple_system(n).unwrap();
    let triples: Vec<[NodeId; 3]> = sts
        .iter()
        .map(|t| [NodeId(t[0]), NodeId(t[1]), NodeId(t[2])])
        .collect();
    assert!(is_triangle_partition(&kn, &triples));
    // And the exact solver can reconstruct optimality on K9? m = 36 is
    // beyond the exact cap; instead verify on the sub-instance K3.
    assert_eq!(exact_minimum(&generators::cycle(3), 3), 3);
}

#[test]
fn gadget_scales_with_input_degree() {
    // Δ grows -> more interconnect rounds; the gadget must stay simple and
    // regular for Δ = 2, 4, 6.
    let c6 = generators::cycle(6); // Δ=2
    let bowtie = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]); // Δ=4
                                                                                          // Δ=6: three triangles through one shared node.
    let tri3 = Graph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 0),
        ],
    );
    for (g, delta) in [(c6, 2), (bowtie, 4), (tri3, 6)] {
        let reg = regularize(&g);
        assert_eq!(reg.delta, delta);
        assert!(reg.graph.is_regular(delta));
        assert!(reg.graph.is_simple());
        // Lift a partition when one exists.
        if let Some(p) = ept_solve(&g) {
            assert!(is_triangle_partition(&reg.graph, &reg.lift_partition(&p)));
        }
    }
}
