//! Workspace integration tests: demands → algorithm → ring assignment,
//! cross-checking the graph-side and ring-side accounting on every path
//! through the stack.

use grooming::algorithm::Algorithm;
use grooming::pipeline::groom;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::demand::DemandSet;
use grooming_sonet::grooming::GroomingAssignment;
use grooming_sonet::rates::OcRate;
use grooming_sonet::ring::UpsrRing;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn every_algorithm_grooms_random_demands() {
    for seed in 0..4u64 {
        let demands = DemandSet::random(20, 50, &mut rng(seed));
        for algo in Algorithm::FIGURE4 {
            for k in [1usize, 3, 16, 64] {
                let out = groom(&demands, k, algo, &mut rng(seed + 10)).unwrap();
                out.assignment.validate(Some(&demands)).unwrap();
                assert_eq!(out.report.pairs_carried, demands.len());
                assert_eq!(
                    out.report.sadm_total,
                    out.partition.sadm_cost(&demands.to_traffic_graph())
                );
            }
        }
    }
}

#[test]
fn regular_demands_run_the_full_figure5_lineup() {
    for (n, r) in [(20, 5), (20, 6), (36, 7), (36, 8)] {
        let demands = DemandSet::random_regular(n, r, &mut rng(99));
        for algo in Algorithm::FIGURE5 {
            let out = groom(&demands, 8, algo, &mut rng(7)).unwrap();
            out.assignment.validate(Some(&demands)).unwrap();
        }
    }
}

#[test]
fn oc_rates_drive_realistic_grooming_factors() {
    let demands = DemandSet::random(16, 33, &mut rng(5));
    for (line, trib) in [
        (OcRate::Oc48, OcRate::Oc3),
        (OcRate::Oc48, OcRate::Oc12),
        (OcRate::Oc192, OcRate::Oc3),
        (OcRate::Oc192, OcRate::Oc48),
    ] {
        let k = line.grooming_factor(trib).unwrap();
        let out = groom(
            &demands,
            k,
            Algorithm::SpanTEuler(TreeStrategy::Bfs),
            &mut rng(6),
        )
        .unwrap();
        assert_eq!(out.report.grooming_factor, k);
        assert_eq!(out.report.wavelengths, demands.len().div_ceil(k));
    }
}

#[test]
fn grooming_always_beats_or_matches_dedicated_wavelengths() {
    for seed in 0..4u64 {
        let demands = DemandSet::random(18, 40, &mut rng(seed));
        let dedicated = GroomingAssignment::dedicated(UpsrRing::new(18), 16, &demands);
        for algo in Algorithm::FIGURE4 {
            let out = groom(&demands, 16, algo, &mut rng(seed)).unwrap();
            assert!(
                out.report.sadm_total <= dedicated.sadm_count(),
                "{algo} lost to no-grooming"
            );
        }
    }
}

#[test]
fn traffic_matrix_round_trip_through_pipeline() {
    let demands = DemandSet::random(12, 25, &mut rng(8));
    let matrix = demands.to_matrix();
    let demands2 = matrix.to_demand_set();
    assert_eq!(demands2.len(), demands.len());
    assert_eq!(demands2.to_matrix(), matrix);
    // Same multiset of pairs (different order): both groomings must be
    // valid, carry everything, and use the same minimum wavelength count.
    // (Costs may differ slightly: edge order steers the Euler walks.)
    let out1 = groom(&demands, 4, Algorithm::Brauner, &mut rng(0)).unwrap();
    let out2 = groom(&demands2, 4, Algorithm::Brauner, &mut rng(0)).unwrap();
    assert_eq!(out1.report.wavelengths, out2.report.wavelengths);
    assert_eq!(out1.report.pairs_carried, out2.report.pairs_carried);
}

#[test]
fn duplicate_demands_are_groomed_as_parallel_pairs() {
    // Two units between the same node pair: a multigraph traffic graph.
    let demands = DemandSet::from_pairs(6, &[(0, 3), (0, 3), (1, 4), (2, 5)]);
    let out = groom(
        &demands,
        2,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        &mut rng(1),
    )
    .unwrap();
    out.assignment.validate(Some(&demands)).unwrap();
    assert_eq!(out.report.wavelengths, 2);
}

#[test]
fn sadm_per_node_sums_to_total() {
    let demands = DemandSet::all_to_all(9);
    let out = groom(&demands, 4, Algorithm::RegularEuler, &mut rng(3)).unwrap();
    let per_node_sum: usize = out.report.per_node_adms.iter().sum();
    assert_eq!(per_node_sum, out.report.sadm_total);
    assert_eq!(
        out.report.bypass_total,
        out.report.wavelengths * 9 - out.report.sadm_total
    );
}
