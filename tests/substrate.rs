//! Integration tests across the substrate extensions: weighted demands,
//! protection switching, BLSR grooming, and the wavelength-budget layer —
//! exercised together through realistic scenarios.

// The deprecated wrappers stay covered here until they are removed.
#![allow(deprecated)]

use grooming::algorithm::Algorithm;
use grooming::budget::groom_with_budget;
use grooming::pipeline::groom;
use grooming_graph::spanning::TreeStrategy;
use grooming_sonet::blsr::{groom_blsr, BlsrRing};
use grooming_sonet::demand::DemandSet;
use grooming_sonet::protection::{simulate, Failure};
use grooming_sonet::ring::UpsrRing;
use grooming_sonet::weighted::{first_fit_decreasing, WeightedDemandSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn random_weighted(n: usize, count: usize, max_units: u32, seed: u64) -> WeightedDemandSet {
    let mut r = rng(seed);
    let mut set = WeightedDemandSet::new(n);
    for _ in 0..count {
        let a = r.gen_range(0..n as u32);
        let mut b = r.gen_range(0..n as u32);
        while b == a {
            b = r.gen_range(0..n as u32);
        }
        set.add(
            grooming_graph::ids::NodeId(a),
            grooming_graph::ids::NodeId(b),
            r.gen_range(1..=max_units),
        );
    }
    set
}

#[test]
fn weighted_splittable_path_runs_the_paper_algorithms() {
    for seed in 0..3u64 {
        let set = random_weighted(14, 20, 6, seed);
        let unitary = set.expand();
        assert_eq!(unitary.len() as u64, set.total_units());
        for algo in [
            Algorithm::SpanTEuler(TreeStrategy::Bfs),
            Algorithm::Brauner,
            Algorithm::CliqueFirst,
        ] {
            let out = groom(&unitary, 16, algo, &mut rng(seed)).unwrap();
            out.assignment.validate(Some(&unitary)).unwrap();
            assert_eq!(out.report.wavelengths, unitary.len().div_ceil(16));
        }
    }
}

#[test]
fn weighted_non_splittable_never_beats_splittable_wavelengths() {
    for seed in 0..4u64 {
        let set = random_weighted(12, 15, 8, seed);
        let k = 16;
        let non_split = first_fit_decreasing(&set, k);
        non_split.validate(Some(&set)).unwrap();
        let split_min = (set.total_units() as usize).div_ceil(k);
        assert!(non_split.num_wavelengths() >= split_min);
    }
}

#[test]
fn groomed_rings_survive_every_single_span_cut() {
    // The full stack: groom, then fire-drill the result's demand set.
    let demands = DemandSet::random(18, 50, &mut rng(9));
    let out = groom(
        &demands,
        8,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        &mut rng(9),
    )
    .unwrap();
    assert_eq!(out.report.pairs_carried, demands.len());
    let ring = UpsrRing::new(18);
    for span in ring.arcs() {
        let rep = simulate(&ring, &demands, &Failure::single(span));
        assert!(rep.fully_survivable());
        assert_eq!(rep.working + rep.switched, 2 * demands.len());
    }
}

#[test]
fn blsr_uses_no_more_wavelengths_than_upsr_on_short_hop_traffic() {
    // Adjacent-neighbor traffic: the best case for spatial reuse.
    let n = 16;
    let mut demands = DemandSet::new(n);
    for i in 0..n as u32 {
        demands.add(
            grooming_graph::ids::NodeId(i),
            grooming_graph::ids::NodeId((i + 1) % n as u32),
        );
    }
    let k = 4;
    let upsr = groom(&demands, k, Algorithm::Brauner, &mut rng(1)).unwrap();
    let blsr = groom_blsr(BlsrRing::new(n), &demands, k);
    blsr.validate(Some(&demands)).unwrap();
    assert!(blsr.num_wavelengths() <= upsr.report.wavelengths);
    // 16 single-hop demands, span capacity 4: the ring carries them all on
    // one wavelength (each span loaded once).
    assert_eq!(blsr.num_wavelengths(), 1);
}

#[test]
fn budget_layer_composes_with_the_pipeline_demands() {
    let demands = DemandSet::random(16, 40, &mut rng(3));
    let g = demands.to_traffic_graph();
    let min_w = 40usize.div_ceil(8);
    let p = groom_with_budget(&g, 8, min_w, Algorithm::CliqueFirst, &mut rng(3)).unwrap();
    p.validate(&g, 8).unwrap();
    assert!(p.num_wavelengths() <= min_w);
    // And with slack, cost is no worse.
    let loose = groom_with_budget(&g, 8, min_w + 4, Algorithm::CliqueFirst, &mut rng(3)).unwrap();
    assert!(loose.sadm_cost(&g) <= p.sadm_cost(&g));
}

#[test]
fn symmetric_grooming_lifts_to_a_valid_directed_assignment() {
    // The paper's §1 reduction, round-tripped: groom symmetrically, lift
    // to directed circuits, and confirm validity + identical SADM count.
    use grooming_sonet::directed::join_pairs;
    let demands = DemandSet::random(14, 30, &mut rng(11));
    let out = groom(
        &demands,
        8,
        Algorithm::SpanTEuler(TreeStrategy::Bfs),
        &mut rng(11),
    )
    .unwrap();
    let groups: Vec<Vec<grooming_sonet::demand::DemandPair>> = out
        .assignment
        .channels()
        .iter()
        .map(|c| c.pairs().to_vec())
        .collect();
    let directed = join_pairs(UpsrRing::new(14), 8, &groups);
    directed.validate().unwrap();
    assert_eq!(directed.sadm_count(), out.report.sadm_total);
    assert_eq!(directed.num_wavelengths(), out.report.wavelengths);
}

#[test]
fn weighted_protection_drill() {
    // Expand weighted demands, groom, and verify survivability of the
    // expanded set (duplicates included).
    let set = random_weighted(10, 12, 4, 5);
    let unitary = set.expand();
    let ring = UpsrRing::new(10);
    for span in ring.arcs() {
        let rep = simulate(&ring, &unitary, &Failure::single(span));
        assert!(rep.fully_survivable());
    }
}
