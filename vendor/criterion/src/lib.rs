//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! crate: enough of the API (`Criterion`, benchmark groups, `Bencher`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros) for this workspace's benches to compile and produce simple
//! wall-clock numbers, with none of the statistics machinery.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function("", f);
        group.finish();
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchIdLike>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().0;
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Benchmarks `f` against a fixed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchIdLike>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if samples.is_empty() {
            println!("bench {label:<48} (no samples)");
            return;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "bench {label:<48} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            samples.len()
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if mean > Duration::ZERO {
                let rate = count as f64 / mean.as_secs_f64();
                let _ = write!(line, "  {rate:>12.0} {unit}/s");
            }
        }
        println!("{line}");
    }
}

/// Accepts both strings and [`BenchmarkId`]s as benchmark names.
pub struct BenchIdLike(String);

impl From<BenchmarkId> for BenchIdLike {
    fn from(id: BenchmarkId) -> Self {
        BenchIdLike(id.id)
    }
}

impl From<&str> for BenchIdLike {
    fn from(s: &str) -> Self {
        BenchIdLike(s.to_string())
    }
}

impl From<String> for BenchIdLike {
    fn from(s: String) -> Self {
        BenchIdLike(s)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        let _ = routine();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
