//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the slice of the `rand 0.8` API the workspace
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different stream
//! than upstream's ChaCha12, but the workspace only relies on determinism
//! (same seed ⇒ same stream) and statistical quality, never on the exact
//! byte sequence of upstream `rand`.

/// The core of every random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs 0 <= p <= 1");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a `u64` to the unit interval `[0, 1)` with 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 step: advances `*state` and returns the mixed output.
/// Public so downstream crates can derive independent sub-seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `[low, high)` (exclusive) or `[low, high]` (inclusive).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform draw from `0..span` (`span >= 1`) by 128-bit widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                } else {
                    assert!(low < high, "cannot sample from empty range");
                }
                // Width as u64 via wrapping arithmetic (correct for signed
                // types too: the two's-complement difference is the width).
                let span = (high as u64)
                    .wrapping_sub(low as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Inclusive over the full domain: every value is fair.
                    return rng.next_u64() as Self;
                }
                (low as u64).wrapping_add(below(rng, span)) as Self
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                } else {
                    assert!(low < high, "cannot sample from empty range");
                }
                let sample = low + (high - low) * unit_f64(rng.next_u64()) as $t;
                // Guard against rounding up to an exclusive upper bound.
                if !inclusive && sample >= high {
                    low
                } else {
                    sample
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling, mirroring `rand::seq::index`.
    pub mod index {
        use super::{Rng, RngCore};

        /// Lengths up to this bound always take the partial Fisher–Yates
        /// path, so the RNG streams of every small-size caller (including
        /// the workspace's golden-pinned instances) are bit-identical to
        /// the pre-Floyd implementation.
        const FLOYD_LENGTH_MIN: usize = 1 << 16;

        /// Above [`FLOYD_LENGTH_MIN`], Floyd's algorithm kicks in only for
        /// genuinely sparse requests (`amount * FLOYD_SPARSITY <= length`);
        /// denser requests keep Fisher–Yates, whose O(length) table is then
        /// within a constant factor of the output size.
        const FLOYD_SPARSITY: usize = 8;

        /// Samples `amount` distinct indices from `0..length`, uniformly
        /// over subsets.
        ///
        /// Small lengths (`<= 65536`) use a partial Fisher–Yates walk and
        /// produce the exact RNG stream and output this function has always
        /// produced. Larger lengths with `amount ≪ length` switch to
        /// Floyd's algorithm, which needs O(amount) memory instead of an
        /// O(length) index table (~40 GB at `length = C(1e5, 2)`), at the
        /// cost of a different (still uniform) stream.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct values from {length}"
            );
            if length > FLOYD_LENGTH_MIN && amount.saturating_mul(FLOYD_SPARSITY) <= length {
                return sample_floyd(rng, length, amount);
            }
            sample_fisher_yates(rng, length, amount)
        }

        /// Partial Fisher–Yates walk over a dense index table. Consumes
        /// exactly `amount` draws of `gen_range(i..length)`.
        fn sample_fisher_yates<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            indices
        }

        /// Floyd's combination sampling: exactly `amount` draws of
        /// `gen_range(0..=j)` for `j` in `(length - amount)..length`, and
        /// O(amount) memory. Uniform over subsets; output in insertion
        /// order.
        fn sample_floyd<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            let mut chosen = std::collections::HashSet::with_capacity(amount);
            let mut picks = Vec::with_capacity(amount);
            for j in (length - amount)..length {
                let t = rng.gen_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                picks.push(pick);
            }
            picks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_samples_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = super::seq::index::sample(&mut rng, 100, 30);
        assert_eq!(picks.len(), 30);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(picks.iter().all(|&i| i < 100));
    }

    /// The partial Fisher–Yates walk `sample` has always used, spelled out
    /// inline so the test below can detect any change to the small-length
    /// output or RNG consumption.
    fn fisher_yates_reference(rng: &mut StdRng, length: usize, amount: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        indices
    }

    #[test]
    fn small_length_sample_stream_is_unchanged() {
        // Covers the pair-count lengths of the golden-pinned gnm
        // instances (C(6,2)=15, C(36,2)=630, C(150,2)=11175) plus the
        // largest length still on the Fisher–Yates path.
        for (length, amount) in [(15, 15), (630, 216), (11175, 1200), (1 << 16, 64)] {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let got = super::seq::index::sample(&mut a, length, amount);
            let want = fisher_yates_reference(&mut b, length, amount);
            assert_eq!(got, want, "output moved at length={length}");
            // Same number of draws consumed: the generators stay in step.
            assert_eq!(
                a.next_u64(),
                b.next_u64(),
                "stream desynced at length={length}"
            );
        }
    }

    #[test]
    fn floyd_sample_distinct_in_range_and_draw_count() {
        let length = (1usize << 16) + 1; // just past the Fisher–Yates cutoff
        let amount = 500;
        let mut rng = StdRng::seed_from_u64(6);
        let picks = super::seq::index::sample(&mut rng, length, amount);
        assert_eq!(picks.len(), amount);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), amount);
        assert!(picks.iter().all(|&i| i < length));
        // Floyd consumes exactly `amount` draws.
        let mut replay = StdRng::seed_from_u64(6);
        for j in (length - amount)..length {
            let _ = replay.gen_range(0..=j);
        }
        assert_eq!(rng.next_u64(), replay.next_u64());
    }

    #[test]
    fn floyd_sample_handles_huge_lengths() {
        // C(1e5, 2) — the dense table would be ~40 GB; Floyd is O(amount).
        let length = 100_000 * 99_999 / 2;
        let mut rng = StdRng::seed_from_u64(7);
        let picks = super::seq::index::sample(&mut rng, length, 2_000);
        assert_eq!(picks.len(), 2_000);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 2_000);
        assert!(picks.iter().all(|&i| i < length));
    }
}
