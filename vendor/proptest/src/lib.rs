//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`Just`], [`prop_oneof!`], `any::<T>()` and the
//! `prop_assert*` macros — on top of the vendored `rand`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and the fixed per-test seed, which reproduces it exactly),
//! and no persistence (`*.proptest-regressions` files are ignored).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. A deterministic [`StdRng`] stream.
pub type TestRng = StdRng;

/// Error type carried out of a failing test case.
pub type TestCaseError = String;

/// Result type produced by a single test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Derives the per-test RNG seed from the test's fully qualified name, so
/// every test gets an independent but fixed stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, stable across platforms and runs.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic RNG for one named test.
pub fn test_rng(test_name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name))
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest case, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Rejects a generated case that does not meet a precondition. This
/// runner has no resample loop, so the case is simply skipped.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides = {:?}", a);
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The test-defining macro. Each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations of `body`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strat;)+
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1,
                        cfg.cases,
                        stringify!($name),
                        msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        any::<u64>().prop_map(|v| v & !1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..=20, f in 0.0f64..=1.0) {
            prop_assert!((3..=20).contains(&n));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn mapped_strategies_apply(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(pick in prop_oneof![Just(1usize), Just(2), 5usize..=8]) {
            prop_assert!(pick == 1 || pick == 2 || (5..=8).contains(&pick));
        }
    }

    #[test]
    fn same_test_name_same_stream() {
        use crate::Strategy;
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        let s = 0usize..100;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
