#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build-and-test pass.
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --all-targets (benches, examples, tests compile) =="
cargo build --all-targets

echo "== tier-1: cargo build --release && cargo test =="
cargo build --release
cargo test -q

echo "== perf smoke: improvement-engine baseline (release, --fast) =="
# Asserts bit-identity between the incremental engine and the preserved
# reference implementations on the baseline instance, and records the
# fast-mode timings. The checked-in results/BENCH_improve.json is produced
# by the full run: target/release/perf_improve
target/release/perf_improve --fast --out /tmp/BENCH_improve_fast.json

echo "== perf smoke: construction-pipeline baseline (release, --fast) =="
# Same contract for the construction pipeline: the flat-CSR/workspace path
# must reproduce grooming::reference bit for bit on a thinned Figure-4/5
# grid. The checked-in results/BENCH_pipeline.json is produced by the full
# run: target/release/perf_pipeline
target/release/perf_pipeline --fast --out /tmp/BENCH_pipeline_fast.json

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI gate passed."
