#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build-and-test pass.
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test =="
cargo build --release
cargo test -q

echo "== perf smoke: improvement-engine baseline (release, --fast) =="
# Asserts bit-identity between the incremental engine and the preserved
# reference implementations on the baseline instance, and records the
# fast-mode timings. The checked-in results/BENCH_improve.json is produced
# by the full run: target/release/perf_improve
target/release/perf_improve --fast --out /tmp/BENCH_improve_fast.json

echo "CI gate passed."
