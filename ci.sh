#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build-and-test pass.
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== guard: no non-test code calls deprecated wrappers =="
# The solve surface superseded best_of / groom_with_budget / groom_network
# / OnlineGroomer::rearrange. Their #[deprecated] definitions remain and
# their own tests may call them; everything else goes through
# grooming::solve. Scan every source file up to its first #[cfg(test)]
# marker (test modules sit at the bottom) for surviving call sites,
# skipping comment lines and the definitions themselves.
guard_bad=0
while IFS= read -r f; do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR": "$0}' "$f" \
    | grep -E '(best_of|groom_with_budget|groom_network|\.rearrange)\(' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' \
    | grep -vE 'fn (best_of|groom_with_budget|groom_network|rearrange)' || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    guard_bad=1
  fi
done < <(find crates/*/src examples -name '*.rs')
if [ "$guard_bad" -ne 0 ]; then
  echo "error: deprecated wrapper called from non-test code (use grooming::solve)"
  exit 1
fi
# The rearrange-era "react to churn with a full re-groom" pattern: solving
# Instance::online from non-test code. The warm-start path
# (Instance::reconfigure from OnlineGroomer::snapshot) replaced it; the
# churn bench keeps one deliberate online-vs-offline comparison.
guard_bad=0
while IFS= read -r f; do
  case "$f" in
    crates/bench/src/bin/churn.rs) continue ;;   # the comparative study
  esac
  hits=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR": "$0}' "$f" \
    | grep -F 'Instance::online(' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|note =)' || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    guard_bad=1
  fi
done < <(find crates/*/src examples -name '*.rs')
if [ "$guard_bad" -ne 0 ]; then
  echo "error: full re-groom of an online snapshot outside the churn bench (warm-start with Instance::reconfigure instead)"
  exit 1
fi

# Mesh routing must go through the solve path (Instance::Mesh +
# SolveContext): the dispatcher owns route bookkeeping (routes_evaluated,
# Capacity errors, capacity repair), so calling mesh::route_demands /
# mesh::enforce_caps directly forfeits stats and the blocking contract.
# Only the defining module and the solve.rs dispatcher may name them
# outside tests.
guard_bad=0
while IFS= read -r f; do
  case "$f" in
    crates/core/src/mesh.rs) continue ;;   # the definitions
    crates/core/src/solve.rs) continue ;;  # the dispatcher
  esac
  hits=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR": "$0}' "$f" \
    | grep -E '(route_demands|enforce_caps)\(' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    guard_bad=1
  fi
done < <(find crates/*/src examples -name '*.rs')
if [ "$guard_bad" -ne 0 ]; then
  echo "error: mesh routing called outside the solve path (use Instance::mesh + Solver::solve)"
  exit 1
fi

# groomsim is the warm path in a jar: the network starts empty and every
# state is reached by repairing the previous one through
# Instance::reconfigure. Cold solves (or online full re-grooms) inside
# crates/sim would silently change what the simulator measures, so any
# instance constructor other than reconfigure is banned there outside
# tests.
guard_bad=0
while IFS= read -r f; do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR": "$0}' "$f" \
    | grep -E 'Instance::(online|ring|upsr|mesh|blsr|multi_ring|weighted)\(' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    guard_bad=1
  fi
done < <(find crates/sim/src -name '*.rs')
if [ "$guard_bad" -ne 0 ]; then
  echo "error: cold solve inside crates/sim (the simulator is warm-path only: Instance::reconfigure)"
  exit 1
fi

echo "== cargo build --all-targets (benches, examples, tests compile) =="
cargo build --all-targets

echo "== tier-1: cargo build --release && cargo test =="
cargo build --release
cargo test -q

echo "== service smoke: groomd over TCP (digest-asserted transcript) =="
# Serves a canned mixed batch on an ephemeral loopback port at 1 and 2
# workers and asserts the response transcripts are byte-identical — the
# service determinism contract, exercised over a real socket.
target/release/groomd_smoke

echo "== perf smoke: improvement-engine baseline (release, --fast) =="
# Asserts bit-identity between the incremental engine and the preserved
# reference implementations on the baseline instance, and records the
# fast-mode timings. The checked-in results/BENCH_improve.json is produced
# by the full run: target/release/perf_improve
target/release/perf_improve --fast --out /tmp/BENCH_improve_fast.json

echo "== perf smoke: construction-pipeline baseline (release, --fast) =="
# Same contract for the construction pipeline: the flat-CSR/workspace path
# must reproduce grooming::reference bit for bit on a thinned Figure-4/5
# grid. The checked-in results/BENCH_pipeline.json is produced by the full
# run: target/release/perf_pipeline
target/release/perf_pipeline --fast --out /tmp/BENCH_pipeline_fast.json

echo "== perf smoke: groomd service baseline (release, --fast) =="
# Drives groomd over a real loopback socket: asserts the response
# transcript digest is byte-identical at 1 worker, 4 workers, and with the
# solve cache cold and warm, then ramps pipelined bursts against a small
# queue to record the blocking point. The checked-in
# results/BENCH_groomd.json is produced by the full run:
# target/release/perf_service
target/release/perf_service --fast --out /tmp/BENCH_groomd_fast.json

echo "== perf smoke: million-edge scale tier (release, --fast) =="
# Runs the three scale-tier generator families at n = 10^4 through the
# auto-sharded construction and sparse-incidence refinement, asserts the
# sharded-vs-unsharded and sparse-vs-dense bit-identity contracts, and
# asserts peak RSS stays under the fast tier's documented ceiling (the
# binary exits non-zero on a breach). The checked-in
# results/BENCH_scale.json is produced by the full run:
# target/release/perf_scale
target/release/perf_scale --fast --out /tmp/BENCH_scale_fast.json

echo "== perf smoke: churn warm-start baseline (release, --fast) =="
# Replays the pinned churn trace at n = 10^4: warm-starts each window from
# the previous plan, re-solves it cold for comparison, and asserts the
# empty-delta byte-identity, the never-worse-than-prior cost invariant,
# per-window warm <= cold, and the 5x aggregate warm-vs-cold speedup floor
# (the binary exits non-zero on any breach). The checked-in
# results/BENCH_churn.json is produced by the full run:
# target/release/perf_churn
target/release/perf_churn --fast --out /tmp/BENCH_churn_fast.json

echo "== perf smoke: mesh loading baseline (release, --fast) =="
# Loads the capacitated metro grid until the blocking rate crosses 1%,
# measures mesh solve throughput through the service with the cache off,
# asserts byte-identical transcripts at 1 vs 4 workers, and asserts peak
# RSS stays under the fast tier's ceiling (the binary exits non-zero on
# any breach). The checked-in results/BENCH_mesh.json is produced by the
# full run: target/release/perf_mesh
target/release/perf_mesh --fast --out /tmp/BENCH_mesh_fast.json

echo "== perf smoke: groomsim dynamic-traffic baseline (release, --fast) =="
# Sweeps small ring and mesh cells to the 1% blocking point, asserts the
# sweep re-runs deterministically (including under reversed stream
# registration), soaks a live groomd over TCP against the in-process
# transcript byte for byte, and asserts peak RSS stays under the fast
# tier's ceiling (the binary exits non-zero on any breach). The
# checked-in results/BENCH_sim.json is produced by the full run:
# target/release/perf_sim
target/release/perf_sim --fast --out /tmp/BENCH_sim_fast.json

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI gate passed."
